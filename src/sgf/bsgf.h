// BsgfQuery: a basic strictly-guarded-fragment query (paper §3.1, Eq. 1):
//
//   Z := SELECT x_bar FROM R(t_bar) [WHERE C];
//
// The guard is an atom; C is a Boolean combination of conditional atoms
// subject to the guardedness restriction (variables shared between two
// distinct conditional atoms must occur in the guard).
#ifndef GUMBO_SGF_BSGF_H_
#define GUMBO_SGF_BSGF_H_

#include <string>
#include <vector>

#include "sgf/atom.h"
#include "sgf/condition.h"

namespace gumbo::sgf {

class BsgfQuery {
 public:
  BsgfQuery() = default;

  /// Builds a query. `condition` may be null (no WHERE clause); when
  /// non-null its atom indices refer to `conditional_atoms`.
  BsgfQuery(std::string output, std::vector<std::string> select_vars,
            Atom guard, std::vector<Atom> conditional_atoms,
            ConditionPtr condition)
      : output_(std::move(output)),
        select_vars_(std::move(select_vars)),
        guard_(std::move(guard)),
        conditional_atoms_(std::move(conditional_atoms)),
        condition_(std::move(condition)) {}

  BsgfQuery(const BsgfQuery& o) { *this = o; }
  BsgfQuery& operator=(const BsgfQuery& o) {
    if (this == &o) return *this;
    output_ = o.output_;
    select_vars_ = o.select_vars_;
    guard_ = o.guard_;
    conditional_atoms_ = o.conditional_atoms_;
    condition_ = o.condition_ ? o.condition_->Clone() : nullptr;
    return *this;
  }
  BsgfQuery(BsgfQuery&&) = default;
  BsgfQuery& operator=(BsgfQuery&&) = default;

  const std::string& output() const { return output_; }
  const std::vector<std::string>& select_vars() const { return select_vars_; }
  const Atom& guard() const { return guard_; }
  const std::vector<Atom>& conditional_atoms() const {
    return conditional_atoms_;
  }
  /// Null when there is no WHERE clause.
  const Condition* condition() const { return condition_.get(); }

  bool has_condition() const { return condition_ != nullptr; }
  size_t num_conditional_atoms() const { return conditional_atoms_.size(); }

  /// Output arity (|select_vars|).
  uint32_t OutputArity() const {
    return static_cast<uint32_t>(select_vars_.size());
  }

  /// All relation names this query reads: the guard plus all conditional
  /// atoms' relations, deduplicated, in first-mention order.
  std::vector<std::string> InputRelations() const;

  /// The join key of conditional atom `i` with the guard: shared variables
  /// in first-occurrence-in-kappa order (see Atom::SharedVariables).
  std::vector<std::string> JoinKeyOf(size_t i) const {
    return conditional_atoms_[i].SharedVariables(guard_);
  }

  /// True if every conditional atom has the same join key *variables* (in
  /// the same canonical order) — one of the two situations in which the
  /// fused 1-ROUND evaluation applies (paper §5.1, optimization (4)).
  bool AllAtomsShareJoinKey() const;

  std::string ToString(const Dictionary* dict = nullptr) const;

 private:
  std::string output_;
  std::vector<std::string> select_vars_;
  Atom guard_;
  std::vector<Atom> conditional_atoms_;
  ConditionPtr condition_;
};

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_BSGF_H_
