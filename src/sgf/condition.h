// Condition: the Boolean combination in a BSGF WHERE clause.
//
// Leaves reference conditional atoms by index (the atoms themselves live in
// the owning BsgfQuery); inner nodes are AND / OR / NOT. See paper §3.1.
#ifndef GUMBO_SGF_CONDITION_H_
#define GUMBO_SGF_CONDITION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace gumbo::sgf {

class Condition;
using ConditionPtr = std::unique_ptr<Condition>;

class Condition {
 public:
  enum class Kind { kAtom, kAnd, kOr, kNot };

  static ConditionPtr MakeAtom(size_t atom_index);
  static ConditionPtr MakeAnd(ConditionPtr lhs, ConditionPtr rhs);
  static ConditionPtr MakeOr(ConditionPtr lhs, ConditionPtr rhs);
  static ConditionPtr MakeNot(ConditionPtr child);

  /// N-ary conveniences; require at least one operand.
  static ConditionPtr MakeAndAll(std::vector<ConditionPtr> operands);
  static ConditionPtr MakeOrAll(std::vector<ConditionPtr> operands);

  Kind kind() const { return kind_; }
  size_t atom_index() const { return atom_index_; }
  const Condition* lhs() const { return lhs_.get(); }
  const Condition* rhs() const { return rhs_.get(); }
  /// For kNot, the single child is stored as lhs.
  const Condition* child() const { return lhs_.get(); }

  ConditionPtr Clone() const;

  /// Evaluates the Boolean combination given the truth value of each
  /// conditional atom.
  bool Evaluate(const std::function<bool(size_t)>& atom_truth) const;

  /// Appends all atom indices in this subtree (with repetition, in
  /// left-to-right order).
  void CollectAtomIndices(std::vector<size_t>* out) const;

  /// Number of atom leaves (with repetition).
  size_t LeafCount() const;

  /// True if the condition is a disjunction of literals (atoms or negated
  /// atoms) — the class of conditions the 1-ROUND fused job supports even
  /// when join keys differ (paper §5.1, optimization (4)).
  bool IsDisjunctionOfLiterals() const;

  /// Converts to disjunctive normal form as a list of clauses, each clause
  /// a list of signed atom indices (positive = atom, negative = NOT atom,
  /// using index+1 to keep 0 unambiguous). Fails with FailedPrecondition if
  /// the DNF would exceed `max_clauses` (exponential blowup guard). Used by
  /// the sequential (SEQ) baseline planner.
  Status ToDnf(std::vector<std::vector<int>>* clauses,
               size_t max_clauses = 4096) const;

  /// Renders with explicit parentheses, naming atoms via the callback.
  std::string ToString(
      const std::function<std::string(size_t)>& atom_name) const;

 private:
  Condition() = default;

  Kind kind_ = Kind::kAtom;
  size_t atom_index_ = 0;
  ConditionPtr lhs_;
  ConditionPtr rhs_;
};

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_CONDITION_H_
