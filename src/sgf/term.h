// Term: a variable or a data-value constant appearing in an atom.
#ifndef GUMBO_SGF_TERM_H_
#define GUMBO_SGF_TERM_H_

#include <string>
#include <utility>

#include "common/dictionary.h"
#include "common/value.h"

namespace gumbo::sgf {

/// A term is either a variable (named) or a constant (a Value from the
/// domain D). See paper §3.1.
class Term {
 public:
  enum class Kind { kVariable, kConstant };

  static Term Var(std::string name) {
    Term t;
    t.kind_ = Kind::kVariable;
    t.var_ = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind_ = Kind::kConstant;
    t.value_ = v;
    return t;
  }
  static Term ConstInt(int64_t v) { return Const(Value::Int(v)); }

  Kind kind() const { return kind_; }
  bool is_variable() const { return kind_ == Kind::kVariable; }
  bool is_constant() const { return kind_ == Kind::kConstant; }

  /// Variable name; valid only for variables.
  const std::string& var() const { return var_; }
  /// Constant value; valid only for constants.
  Value value() const { return value_; }

  bool operator==(const Term& o) const {
    if (kind_ != o.kind_) return false;
    return is_variable() ? var_ == o.var_ : value_ == o.value_;
  }
  bool operator!=(const Term& o) const { return !(*this == o); }

  std::string ToString(const Dictionary* dict = nullptr) const {
    if (is_variable()) return var_;
    if (dict != nullptr) return dict->ToString(value_);
    if (value_.is_int()) return std::to_string(value_.AsInt());
    return "str#" + std::to_string(value_.string_id());
  }

 private:
  Kind kind_ = Kind::kVariable;
  std::string var_;
  Value value_ = Value::Int(0);
};

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_TERM_H_
