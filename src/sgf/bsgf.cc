#include "sgf/bsgf.h"

#include <algorithm>

namespace gumbo::sgf {

std::vector<std::string> BsgfQuery::InputRelations() const {
  std::vector<std::string> out;
  out.push_back(guard_.relation());
  for (const Atom& a : conditional_atoms_) {
    if (std::find(out.begin(), out.end(), a.relation()) == out.end()) {
      out.push_back(a.relation());
    }
  }
  return out;
}

bool BsgfQuery::AllAtomsShareJoinKey() const {
  if (conditional_atoms_.size() <= 1) return true;
  std::vector<std::string> key = JoinKeyOf(0);
  for (size_t i = 1; i < conditional_atoms_.size(); ++i) {
    if (JoinKeyOf(i) != key) return false;
  }
  return true;
}

std::string BsgfQuery::ToString(const Dictionary* dict) const {
  std::string out = output_ + " := SELECT (";
  for (size_t i = 0; i < select_vars_.size(); ++i) {
    if (i > 0) out += ", ";
    out += select_vars_[i];
  }
  out += ") FROM " + guard_.ToString(dict);
  if (condition_ != nullptr) {
    out += " WHERE " + condition_->ToString([&](size_t i) {
      return conditional_atoms_[i].ToString(dict);
    });
  }
  return out;
}

}  // namespace gumbo::sgf
