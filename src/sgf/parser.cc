#include "sgf/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "sgf/analyzer.h"

namespace gumbo::sgf {

namespace {

enum class TokKind {
  kIdent,      // relation / output / variable names
  kInt,        // integer literal
  kString,     // double-quoted string literal
  kAssign,     // :=
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;   // identifier or string payload
  int64_t int_value;  // for kInt
  int line;
  int col;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      int line = line_, col = col_;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word = ReadWord();
        out->push_back({KeywordOrIdent(word), word, 0, line, col});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        GUMBO_RETURN_IF_ERROR(ReadInt(out, line, col));
      } else if (c == '"') {
        GUMBO_RETURN_IF_ERROR(ReadString(out, line, col));
      } else if (c == ':' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '=') {
        Advance();
        Advance();
        out->push_back({TokKind::kAssign, ":=", 0, line, col});
      } else if (c == '(') {
        Advance();
        out->push_back({TokKind::kLParen, "(", 0, line, col});
      } else if (c == ')') {
        Advance();
        out->push_back({TokKind::kRParen, ")", 0, line, col});
      } else if (c == ',') {
        Advance();
        out->push_back({TokKind::kComma, ",", 0, line, col});
      } else if (c == ';') {
        Advance();
        out->push_back({TokKind::kSemicolon, ";", 0, line, col});
      } else {
        return Error(line, col,
                     std::string("unexpected character '") + c + "'");
      }
    }
    out->push_back({TokKind::kEnd, "", 0, line_, col_});
    return Status::Ok();
  }

 private:
  static Status Error(int line, int col, const std::string& msg) {
    return Status::ParseError("line " + std::to_string(line) + ":" +
                              std::to_string(col) + ": " + msg);
  }

  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        Advance();
      } else if (c == '-' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        break;
      }
    }
  }

  std::string ReadWord() {
    std::string word;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      word += text_[pos_];
      Advance();
    }
    return word;
  }

  Status ReadInt(std::vector<Token>* out, int line, int col) {
    std::string num;
    if (text_[pos_] == '-') {
      num += '-';
      Advance();
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      num += text_[pos_];
      Advance();
    }
    errno = 0;
    int64_t v = std::strtoll(num.c_str(), nullptr, 10);
    if (errno != 0) return Error(line, col, "integer literal out of range");
    out->push_back({TokKind::kInt, num, v, line, col});
    return Status::Ok();
  }

  Status ReadString(std::vector<Token>* out, int line, int col) {
    Advance();  // opening quote
    std::string s;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\n') {
        return Error(line, col, "unterminated string literal");
      }
      s += text_[pos_];
      Advance();
    }
    if (pos_ >= text_.size()) {
      return Error(line, col, "unterminated string literal");
    }
    Advance();  // closing quote
    out->push_back({TokKind::kString, s, 0, line, col});
    return Status::Ok();
  }

  static TokKind KeywordOrIdent(const std::string& word) {
    std::string up;
    for (char c : word) up += static_cast<char>(std::toupper(c));
    if (up == "SELECT") return TokKind::kSelect;
    if (up == "FROM") return TokKind::kFrom;
    if (up == "WHERE") return TokKind::kWhere;
    if (up == "AND") return TokKind::kAnd;
    if (up == "OR") return TokKind::kOr;
    if (up == "NOT") return TokKind::kNot;
    return TokKind::kIdent;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, Dictionary* dict)
      : tokens_(std::move(tokens)), dict_(dict) {}

  Result<SgfQuery> ParseProgram() {
    SgfQuery query;
    while (Peek().kind != TokKind::kEnd) {
      GUMBO_ASSIGN_OR_RETURN(BsgfQuery q, ParseStatement());
      GUMBO_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
      query.Append(std::move(q));
    }
    if (query.empty()) return Status::ParseError("no statements found");
    return query;
  }

  Result<BsgfQuery> ParseSingle() {
    GUMBO_ASSIGN_OR_RETURN(BsgfQuery q, ParseStatement());
    if (Peek().kind == TokKind::kSemicolon) Next();
    if (Peek().kind != TokKind::kEnd) {
      return ErrorAt(Peek(), "trailing input after statement");
    }
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  static Status ErrorAt(const Token& tok, const std::string& msg) {
    return Status::ParseError("line " + std::to_string(tok.line) + ":" +
                              std::to_string(tok.col) + ": " + msg);
  }

  Status Expect(TokKind kind, const std::string& what) {
    if (Peek().kind != kind) {
      return ErrorAt(Peek(), "expected " + what + ", found '" +
                                 (Peek().kind == TokKind::kEnd
                                      ? std::string("<end>")
                                      : Peek().text) +
                                 "'");
    }
    Next();
    return Status::Ok();
  }

  Result<BsgfQuery> ParseStatement() {
    if (Peek().kind != TokKind::kIdent) {
      return ErrorAt(Peek(), "expected output relation name");
    }
    std::string output = Next().text;
    GUMBO_RETURN_IF_ERROR(Expect(TokKind::kAssign, "':='"));
    GUMBO_RETURN_IF_ERROR(Expect(TokKind::kSelect, "SELECT"));
    GUMBO_ASSIGN_OR_RETURN(std::vector<std::string> select_vars,
                           ParseSelectList());
    GUMBO_RETURN_IF_ERROR(Expect(TokKind::kFrom, "FROM"));
    GUMBO_ASSIGN_OR_RETURN(Atom guard, ParseAtom());
    std::vector<Atom> atoms;
    ConditionPtr cond;
    if (Peek().kind == TokKind::kWhere) {
      Next();
      GUMBO_ASSIGN_OR_RETURN(cond, ParseOr(&atoms));
    }
    return BsgfQuery(std::move(output), std::move(select_vars),
                     std::move(guard), std::move(atoms), std::move(cond));
  }

  Result<std::vector<std::string>> ParseSelectList() {
    std::vector<std::string> vars;
    if (Peek().kind == TokKind::kLParen) {
      Next();
      while (true) {
        if (Peek().kind != TokKind::kIdent) {
          return ErrorAt(Peek(), "expected variable in SELECT list");
        }
        vars.push_back(Next().text);
        if (Peek().kind == TokKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      GUMBO_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    } else if (Peek().kind == TokKind::kIdent) {
      vars.push_back(Next().text);
    } else {
      return ErrorAt(Peek(), "expected SELECT list");
    }
    return vars;
  }

  Result<Atom> ParseAtom() {
    if (Peek().kind != TokKind::kIdent) {
      return ErrorAt(Peek(), "expected relation name");
    }
    std::string rel = Next().text;
    GUMBO_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    std::vector<Term> terms;
    while (true) {
      const Token& t = Peek();
      if (t.kind == TokKind::kIdent) {
        Next();
        terms.push_back(Term::Var(t.text));
      } else if (t.kind == TokKind::kInt) {
        Next();
        terms.push_back(Term::ConstInt(t.int_value));
      } else if (t.kind == TokKind::kString) {
        Next();
        terms.push_back(Term::Const(dict_->Intern(t.text)));
      } else {
        return ErrorAt(t, "expected term (variable, integer, or string)");
      }
      if (Peek().kind == TokKind::kComma) {
        Next();
        continue;
      }
      break;
    }
    GUMBO_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return Atom(std::move(rel), std::move(terms));
  }

  // Adds `atom` to the atom list, reusing the index of a structurally
  // identical atom (the paper treats identical atoms as one).
  size_t InternAtom(Atom atom, std::vector<Atom>* atoms) {
    for (size_t i = 0; i < atoms->size(); ++i) {
      if ((*atoms)[i] == atom) return i;
    }
    atoms->push_back(std::move(atom));
    return atoms->size() - 1;
  }

  Result<ConditionPtr> ParseOr(std::vector<Atom>* atoms) {
    GUMBO_ASSIGN_OR_RETURN(ConditionPtr lhs, ParseAnd(atoms));
    while (Peek().kind == TokKind::kOr) {
      Next();
      GUMBO_ASSIGN_OR_RETURN(ConditionPtr rhs, ParseAnd(atoms));
      lhs = Condition::MakeOr(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ConditionPtr> ParseAnd(std::vector<Atom>* atoms) {
    GUMBO_ASSIGN_OR_RETURN(ConditionPtr lhs, ParseUnary(atoms));
    while (Peek().kind == TokKind::kAnd) {
      Next();
      GUMBO_ASSIGN_OR_RETURN(ConditionPtr rhs, ParseUnary(atoms));
      lhs = Condition::MakeAnd(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ConditionPtr> ParseUnary(std::vector<Atom>* atoms) {
    if (Peek().kind == TokKind::kNot) {
      Next();
      GUMBO_ASSIGN_OR_RETURN(ConditionPtr child, ParseUnary(atoms));
      return Condition::MakeNot(std::move(child));
    }
    if (Peek().kind == TokKind::kLParen) {
      Next();
      GUMBO_ASSIGN_OR_RETURN(ConditionPtr inner, ParseOr(atoms));
      GUMBO_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return inner;
    }
    GUMBO_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    return Condition::MakeAtom(InternAtom(std::move(atom), atoms));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Dictionary* dict_;
};

}  // namespace

Result<SgfQuery> ParseSgf(std::string_view text, Dictionary* dict) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  GUMBO_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens), dict);
  GUMBO_ASSIGN_OR_RETURN(SgfQuery query, parser.ParseProgram());
  GUMBO_RETURN_IF_ERROR(ValidateSgf(query));
  return query;
}

Result<BsgfQuery> ParseBsgf(std::string_view text, Dictionary* dict) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  GUMBO_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  Parser parser(std::move(tokens), dict);
  GUMBO_ASSIGN_OR_RETURN(BsgfQuery query, parser.ParseSingle());
  GUMBO_RETURN_IF_ERROR(ValidateBsgf(query));
  return query;
}

}  // namespace gumbo::sgf
