// Parser for the paper's SQL-like SGF syntax.
//
// Grammar (paper §3.1, Example 1/2):
//
//   sgf        := statement+
//   statement  := IDENT ":=" "SELECT" select_list "FROM" atom
//                 [ "WHERE" condition ] ";"
//   select_list:= var | "(" var ("," var)* ")"
//   condition  := or_expr
//   or_expr    := and_expr ( "OR" and_expr )*
//   and_expr   := unary ( "AND" unary )*
//   unary      := "NOT" unary | "(" condition ")" | atom
//   atom       := IDENT "(" term ("," term)* ")"
//   term       := var | INT | STRING
//
// Variables are identifiers starting with a lowercase letter; relation and
// output names start with an uppercase letter. Keywords are
// case-insensitive. String constants are double-quoted and interned into
// the supplied Dictionary.
#ifndef GUMBO_SGF_PARSER_H_
#define GUMBO_SGF_PARSER_H_

#include <string_view>

#include "common/dictionary.h"
#include "common/result.h"
#include "sgf/sgf.h"

namespace gumbo::sgf {

/// Parses a full SGF query (one or more ';'-terminated statements) and
/// validates it with ValidateSgf. Error messages carry line/column info.
Result<SgfQuery> ParseSgf(std::string_view text, Dictionary* dict);

/// Parses exactly one statement into a BsgfQuery (trailing ';' optional)
/// and validates it with ValidateBsgf.
Result<BsgfQuery> ParseBsgf(std::string_view text, Dictionary* dict);

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_PARSER_H_
