#include "sgf/atom.h"

#include <algorithm>

namespace gumbo::sgf {

std::vector<std::string> Atom::Variables() const {
  std::vector<std::string> out;
  for (const Term& t : terms_) {
    if (t.is_variable() &&
        std::find(out.begin(), out.end(), t.var()) == out.end()) {
      out.push_back(t.var());
    }
  }
  return out;
}

bool Atom::UsesVariable(const std::string& var) const {
  for (const Term& t : terms_) {
    if (t.is_variable() && t.var() == var) return true;
  }
  return false;
}

bool Atom::Conforms(TupleView fact) const {
  if (fact.size() != terms_.size()) return false;
  for (size_t i = 0; i < terms_.size(); ++i) {
    const Term& t = terms_[i];
    if (t.is_constant()) {
      if (fact[i] != t.value()) return false;
    } else {
      // Check equality with the first occurrence of the same variable.
      for (size_t j = 0; j < i; ++j) {
        if (terms_[j].is_variable() && terms_[j].var() == t.var()) {
          if (fact[i] != fact[j]) return false;
          break;
        }
      }
    }
  }
  return true;
}

Tuple Atom::Project(TupleView fact,
                    const std::vector<std::string>& vars) const {
  Tuple out;
  for (const std::string& v : vars) {
    int pos = PositionOf(v);
    assert(pos >= 0 && "projection variable not in atom");
    out.PushBack(fact[static_cast<uint32_t>(pos)]);
  }
  return out;
}

bool Atom::IsIdentityProjection(const std::vector<std::string>& vars) const {
  if (vars.size() != terms_.size()) return false;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (PositionOf(vars[i]) != static_cast<int>(i)) return false;
  }
  return true;
}

int Atom::PositionOf(const std::string& var) const {
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i].is_variable() && terms_[i].var() == var) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<std::string> Atom::SharedVariables(const Atom& guard) const {
  std::vector<std::string> out;
  for (const std::string& v : Variables()) {
    if (guard.UsesVariable(v)) out.push_back(v);
  }
  return out;
}

std::string Atom::ConditionSignature(
    const std::vector<std::string>& key_vars) const {
  std::string sig = relation_ + "/" + std::to_string(terms_.size()) + ":";
  // First-occurrence indices for existential (non-key) variables.
  std::vector<std::string> existentials;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) sig += ",";
    const Term& t = terms_[i];
    if (t.is_constant()) {
      sig += "C" + std::to_string(t.value().raw());
      continue;
    }
    auto key_it = std::find(key_vars.begin(), key_vars.end(), t.var());
    if (key_it != key_vars.end()) {
      sig += "K" + std::to_string(key_it - key_vars.begin());
      continue;
    }
    auto ex_it = std::find(existentials.begin(), existentials.end(), t.var());
    if (ex_it == existentials.end()) {
      existentials.push_back(t.var());
      ex_it = existentials.end() - 1;
    }
    sig += "E" + std::to_string(ex_it - existentials.begin());
  }
  return sig;
}

std::string Atom::ToString(const Dictionary* dict) const {
  std::string out = relation_ + "(";
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms_[i].ToString(dict);
  }
  out += ")";
  return out;
}

}  // namespace gumbo::sgf
