// Atom: R(t1, ..., tn) — a relation symbol applied to terms.
//
// Implements the paper's conformance relation (§4, "a fact T(a) conforms to
// an atom U(t)") and projections pi_{alpha;x}(f), which are the primitive
// operations of both the naive evaluator and the MapReduce operators.
#ifndef GUMBO_SGF_ATOM_H_
#define GUMBO_SGF_ATOM_H_

#include <string>
#include <vector>

#include "common/tuple.h"
#include "sgf/term.h"

namespace gumbo::sgf {

class Atom {
 public:
  Atom() = default;
  Atom(std::string relation, std::vector<Term> terms)
      : relation_(std::move(relation)), terms_(std::move(terms)) {}

  /// Convenience: atom over fresh variables var_names.
  static Atom Vars(std::string relation,
                   const std::vector<std::string>& var_names) {
    std::vector<Term> ts;
    ts.reserve(var_names.size());
    for (const auto& v : var_names) ts.push_back(Term::Var(v));
    return Atom(std::move(relation), std::move(ts));
  }

  const std::string& relation() const { return relation_; }
  const std::vector<Term>& terms() const { return terms_; }
  uint32_t arity() const { return static_cast<uint32_t>(terms_.size()); }

  /// Distinct variables in first-occurrence order.
  std::vector<std::string> Variables() const;

  /// Whether `var` occurs among the terms.
  bool UsesVariable(const std::string& var) const;

  /// Conformance check f |= this (paper §4): positions with equal terms
  /// hold equal values; constant positions hold that constant. The fact's
  /// relation is NOT checked here (callers route facts by relation).
  /// Takes a zero-copy view; owning Tuples convert implicitly.
  bool Conforms(TupleView fact) const;

  /// pi_{this;vars}(fact): projects a conforming fact onto the given
  /// variables (each var's first occurrence position). Callers must pass
  /// variables that occur in this atom.
  Tuple Project(TupleView fact, const std::vector<std::string>& vars) const;

  /// Whether projecting onto `vars` reproduces the fact verbatim (every
  /// position is a distinct variable, listed in term order). When true,
  /// Project(fact, vars) == fact word-for-word, so scans can reuse the
  /// fact's stored fingerprint instead of hashing the projection
  /// (DESIGN.md §7).
  bool IsIdentityProjection(const std::vector<std::string>& vars) const;

  /// First-occurrence position of `var`, or -1.
  int PositionOf(const std::string& var) const;

  /// The join key shared with a guard atom: variables of this atom that
  /// also occur in `guard`, ordered by first occurrence in *this* atom.
  /// Both the guard side and the conditional side of a semi-join project
  /// onto this ordering, so the shuffle keys agree (see ops/msj.h).
  std::vector<std::string> SharedVariables(const Atom& guard) const;

  /// Structural equality (same relation, same term list).
  bool operator==(const Atom& o) const {
    return relation_ == o.relation_ && terms_ == o.terms_;
  }
  bool operator!=(const Atom& o) const { return !(*this == o); }

  /// Canonical signature of this atom *as a condition with the given join
  /// key*: two conditional atoms with equal signatures assert exactly the
  /// same thing about a given key tuple, so a single Assert message can
  /// serve both (the paper's "conditional name sharing", query A2).
  ///
  /// The signature encodes, per position: a constant, the index of a
  /// key variable within `key_vars`, or the first-occurrence index of an
  /// existential variable. Example: S(z, x, z, 3) with key (x) =>
  /// "S/4:E0,K0,E0,C3".
  std::string ConditionSignature(const std::vector<std::string>& key_vars) const;

  std::string ToString(const Dictionary* dict = nullptr) const;

 private:
  std::string relation_;
  std::vector<Term> terms_;
};

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_ATOM_H_
