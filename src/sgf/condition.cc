#include "sgf/condition.h"

#include <cassert>

namespace gumbo::sgf {

ConditionPtr Condition::MakeAtom(size_t atom_index) {
  auto c = ConditionPtr(new Condition());
  c->kind_ = Kind::kAtom;
  c->atom_index_ = atom_index;
  return c;
}

ConditionPtr Condition::MakeAnd(ConditionPtr lhs, ConditionPtr rhs) {
  auto c = ConditionPtr(new Condition());
  c->kind_ = Kind::kAnd;
  c->lhs_ = std::move(lhs);
  c->rhs_ = std::move(rhs);
  return c;
}

ConditionPtr Condition::MakeOr(ConditionPtr lhs, ConditionPtr rhs) {
  auto c = ConditionPtr(new Condition());
  c->kind_ = Kind::kOr;
  c->lhs_ = std::move(lhs);
  c->rhs_ = std::move(rhs);
  return c;
}

ConditionPtr Condition::MakeNot(ConditionPtr child) {
  auto c = ConditionPtr(new Condition());
  c->kind_ = Kind::kNot;
  c->lhs_ = std::move(child);
  return c;
}

ConditionPtr Condition::MakeAndAll(std::vector<ConditionPtr> operands) {
  assert(!operands.empty());
  ConditionPtr acc = std::move(operands[0]);
  for (size_t i = 1; i < operands.size(); ++i) {
    acc = MakeAnd(std::move(acc), std::move(operands[i]));
  }
  return acc;
}

ConditionPtr Condition::MakeOrAll(std::vector<ConditionPtr> operands) {
  assert(!operands.empty());
  ConditionPtr acc = std::move(operands[0]);
  for (size_t i = 1; i < operands.size(); ++i) {
    acc = MakeOr(std::move(acc), std::move(operands[i]));
  }
  return acc;
}

ConditionPtr Condition::Clone() const {
  switch (kind_) {
    case Kind::kAtom:
      return MakeAtom(atom_index_);
    case Kind::kAnd:
      return MakeAnd(lhs_->Clone(), rhs_->Clone());
    case Kind::kOr:
      return MakeOr(lhs_->Clone(), rhs_->Clone());
    case Kind::kNot:
      return MakeNot(lhs_->Clone());
  }
  return nullptr;
}

bool Condition::Evaluate(
    const std::function<bool(size_t)>& atom_truth) const {
  switch (kind_) {
    case Kind::kAtom:
      return atom_truth(atom_index_);
    case Kind::kAnd:
      return lhs_->Evaluate(atom_truth) && rhs_->Evaluate(atom_truth);
    case Kind::kOr:
      return lhs_->Evaluate(atom_truth) || rhs_->Evaluate(atom_truth);
    case Kind::kNot:
      return !lhs_->Evaluate(atom_truth);
  }
  return false;
}

void Condition::CollectAtomIndices(std::vector<size_t>* out) const {
  switch (kind_) {
    case Kind::kAtom:
      out->push_back(atom_index_);
      return;
    case Kind::kAnd:
    case Kind::kOr:
      lhs_->CollectAtomIndices(out);
      rhs_->CollectAtomIndices(out);
      return;
    case Kind::kNot:
      lhs_->CollectAtomIndices(out);
      return;
  }
}

size_t Condition::LeafCount() const {
  std::vector<size_t> idx;
  CollectAtomIndices(&idx);
  return idx.size();
}

bool Condition::IsDisjunctionOfLiterals() const {
  switch (kind_) {
    case Kind::kAtom:
      return true;
    case Kind::kNot:
      return lhs_->kind_ == Kind::kAtom;
    case Kind::kOr:
      return lhs_->IsDisjunctionOfLiterals() &&
             rhs_->IsDisjunctionOfLiterals();
    case Kind::kAnd:
      return false;
  }
  return false;
}

namespace {

// DNF of a subtree under `negated`, as clauses of signed (index+1) ints.
Status DnfRec(const Condition* c, bool negated, size_t max_clauses,
              std::vector<std::vector<int>>* out) {
  switch (c->kind()) {
    case Condition::Kind::kAtom: {
      int lit = static_cast<int>(c->atom_index()) + 1;
      out->push_back({negated ? -lit : lit});
      return Status::Ok();
    }
    case Condition::Kind::kNot:
      return DnfRec(c->child(), !negated, max_clauses, out);
    case Condition::Kind::kOr:
    case Condition::Kind::kAnd: {
      // OR under no negation (or AND under negation) = union of clauses;
      // AND under no negation (or OR under negation) = cross product.
      bool is_union = (c->kind() == Condition::Kind::kOr) != negated;
      std::vector<std::vector<int>> left, right;
      GUMBO_RETURN_IF_ERROR(DnfRec(c->lhs(), negated, max_clauses, &left));
      GUMBO_RETURN_IF_ERROR(DnfRec(c->rhs(), negated, max_clauses, &right));
      if (is_union) {
        for (auto& cl : left) out->push_back(std::move(cl));
        for (auto& cl : right) out->push_back(std::move(cl));
      } else {
        if (left.size() * right.size() > max_clauses) {
          return Status::OutOfRange("DNF clause blowup beyond limit");
        }
        for (const auto& a : left) {
          for (const auto& b : right) {
            std::vector<int> merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            out->push_back(std::move(merged));
          }
        }
      }
      if (out->size() > max_clauses) {
        return Status::OutOfRange("DNF clause blowup beyond limit");
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable condition kind");
}

}  // namespace

Status Condition::ToDnf(std::vector<std::vector<int>>* clauses,
                        size_t max_clauses) const {
  clauses->clear();
  return DnfRec(this, /*negated=*/false, max_clauses, clauses);
}

std::string Condition::ToString(
    const std::function<std::string(size_t)>& atom_name) const {
  switch (kind_) {
    case Kind::kAtom:
      return atom_name(atom_index_);
    case Kind::kAnd:
      return "(" + lhs_->ToString(atom_name) + " AND " +
             rhs_->ToString(atom_name) + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString(atom_name) + " OR " +
             rhs_->ToString(atom_name) + ")";
    case Kind::kNot:
      return "NOT " + lhs_->ToString(atom_name);
  }
  return "?";
}

}  // namespace gumbo::sgf
