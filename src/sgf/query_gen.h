// Random SGF query generation for the differential soak harness
// (DESIGN.md §10). Where tests/property_test.cc samples small random BSGF
// queries, this generator produces the *shapes* the planner's cost model
// actually has to discriminate between: wide fan-out (>= 8 conditional
// atoms on one guard), deep semi-join chains (Z1 -> Z2 -> ... -> Zk), and
// anti-join-heavy conditions, plus a mixed mode combining them.
//
// Queries are generated as TEXT and then parsed through sgf::ParseSgf, so
// every generated query is by construction one the parser+validator
// accept, and a failing soak iteration can be reproduced from the printed
// text alone. Generation is deterministic in the seed.
#ifndef GUMBO_SGF_QUERY_GEN_H_
#define GUMBO_SGF_QUERY_GEN_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "sgf/parser.h"
#include "sgf/sgf.h"

namespace gumbo::sgf {

enum class QueryShape { kWideFanout, kDeepChain, kAntiJoinHeavy, kMixed };

const char* QueryShapeName(QueryShape shape);

struct QueryGenConfig {
  QueryShape shape = QueryShape::kMixed;
  /// Minimum conditional atoms on the guard for kWideFanout (the paper's
  /// Table 3 study stops at 3 conditionals; the soak goes to >= 8).
  size_t fanout = 8;
  /// Subqueries in a kDeepChain query: Z1 := ... FROM G; Zi := ... FROM
  /// Z_{i-1}.
  size_t chain_depth = 4;
  /// Constants in atoms are drawn from [0, max_constant); keep this below
  /// the generator domain so constant atoms can actually match.
  size_t max_constant = 50;
};

/// One generated query plus everything needed to (a) build a matching
/// database and (b) reproduce or shrink a failure from text.
struct GeneratedQuery {
  /// One statement per subquery, dependency-ordered; the full query text
  /// is their concatenation, and any *prefix* is itself a valid SGF query
  /// (later subqueries only mention earlier outputs) — the property the
  /// soak minimizer relies on.
  std::vector<std::string> statements;
  SgfQuery query;
  /// Base relation name -> arity for every base relation the query reads.
  std::map<std::string, uint32_t> base_relations;
  QueryShape shape = QueryShape::kMixed;

  std::string Text() const;
};

class QueryGenerator {
 public:
  explicit QueryGenerator(QueryGenConfig config = {}) : config_(config) {}

  const QueryGenConfig& config() const { return config_; }

  /// Deterministic: the same (config, seed) always yields the same query.
  GeneratedQuery Generate(uint64_t seed) const;

 private:
  QueryGenConfig config_;
};

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_QUERY_GEN_H_
