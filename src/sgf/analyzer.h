// Semantic validation of (B)SGF queries.
//
// Enforces the paper's well-formedness rules (§3.1):
//  * select variables occur in the guard atom;
//  * every pair of distinct conditional atoms shares only variables that
//    occur in the guard (the guardedness restriction);
//  * in an SGF query, each output name is defined once, subqueries only
//    reference earlier outputs, and the dependency graph is acyclic;
//  * arities are used consistently across all mentions of a relation.
#ifndef GUMBO_SGF_ANALYZER_H_
#define GUMBO_SGF_ANALYZER_H_

#include "common/status.h"
#include "sgf/sgf.h"

namespace gumbo::sgf {

/// Validates a single basic query.
Status ValidateBsgf(const BsgfQuery& query);

/// Validates a full SGF query (validates each subquery, then the
/// cross-subquery rules).
Status ValidateSgf(const SgfQuery& query);

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_ANALYZER_H_
