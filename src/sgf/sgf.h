// SgfQuery: a strictly-guarded-fragment query — an ordered collection of
// BSGF queries Z1 := xi1; ...; Zn := xin; where xi_i may mention Zj for
// j < i (paper §3.1). Also provides the dependency graph used by the
// multiway-topological-sort planner (paper §4.6).
#ifndef GUMBO_SGF_SGF_H_
#define GUMBO_SGF_SGF_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sgf/bsgf.h"

namespace gumbo::sgf {

/// The dependency graph G_Q over BSGF subqueries: an edge i -> j means the
/// output of subquery i is mentioned by subquery j, so i must be evaluated
/// first.
class DependencyGraph {
 public:
  explicit DependencyGraph(size_t n) : succ_(n), pred_(n) {}

  size_t size() const { return succ_.size(); }
  void AddEdge(size_t from, size_t to);
  const std::vector<size_t>& Successors(size_t i) const { return succ_[i]; }
  const std::vector<size_t>& Predecessors(size_t i) const { return pred_[i]; }
  bool HasEdge(size_t from, size_t to) const;

  /// True iff the graph has no directed cycle.
  bool IsAcyclic() const;

 private:
  std::vector<std::vector<size_t>> succ_;
  std::vector<std::vector<size_t>> pred_;
};

class SgfQuery {
 public:
  SgfQuery() = default;
  explicit SgfQuery(std::vector<BsgfQuery> subqueries)
      : subqueries_(std::move(subqueries)) {}

  const std::vector<BsgfQuery>& subqueries() const { return subqueries_; }
  std::vector<BsgfQuery>& mutable_subqueries() { return subqueries_; }
  size_t size() const { return subqueries_.size(); }
  bool empty() const { return subqueries_.empty(); }

  void Append(BsgfQuery q) { subqueries_.push_back(std::move(q)); }

  /// Index of the subquery producing `name`, or -1 if `name` is a base
  /// relation.
  int ProducerOf(const std::string& name) const;

  /// Builds G_Q: edge i -> j iff Z_i is mentioned in subquery j (as guard
  /// or conditional relation).
  DependencyGraph BuildDependencyGraph() const;

  /// Names produced by some subquery (intermediate or final).
  std::vector<std::string> ProducedNames() const;

  /// Base (non-produced) relation names read anywhere in the query.
  std::vector<std::string> BaseRelations() const;

  /// Output names that no later subquery consumes — the query's sinks.
  /// For a single SGF query in paper form, this is {Z_n}.
  std::vector<std::string> SinkNames() const;

  std::string ToString(const Dictionary* dict = nullptr) const;

 private:
  std::vector<BsgfQuery> subqueries_;
};

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_SGF_H_
