#include "sgf/naive_eval.h"

#include <unordered_set>
#include <vector>

namespace gumbo::sgf {

namespace {

// Hash index over the key projection of all kappa-conforming facts.
struct AtomIndex {
  std::vector<std::string> key_vars;  // shared with guard, kappa order
  std::unordered_set<Tuple> keys;
  bool key_is_empty = false;  // no shared vars: truth = "any conforming fact"
  bool any_conforming = false;
};

Result<AtomIndex> BuildIndex(const Atom& atom, const Atom& guard,
                             const Database& db) {
  AtomIndex index;
  index.key_vars = atom.SharedVariables(guard);
  index.key_is_empty = index.key_vars.empty();
  GUMBO_ASSIGN_OR_RETURN(const Relation* rel, db.Get(atom.relation()));
  if (rel->arity() != atom.arity()) {
    return Status::InvalidArgument(
        "atom " + atom.ToString() + " arity mismatch with relation " +
        rel->name() + "/" + std::to_string(rel->arity()));
  }
  for (RowView fact : rel->views()) {
    if (!atom.Conforms(fact)) continue;
    index.any_conforming = true;
    if (!index.key_is_empty) {
      index.keys.insert(atom.Project(fact, index.key_vars));
    }
  }
  return index;
}

}  // namespace

Result<Relation> NaiveEvalBsgf(const BsgfQuery& query, const Database& db) {
  GUMBO_ASSIGN_OR_RETURN(const Relation* guard_rel,
                         db.Get(query.guard().relation()));
  if (guard_rel->arity() != query.guard().arity()) {
    return Status::InvalidArgument(
        "guard " + query.guard().ToString() + " arity mismatch with relation " +
        guard_rel->name() + "/" + std::to_string(guard_rel->arity()));
  }

  std::vector<AtomIndex> indexes;
  indexes.reserve(query.num_conditional_atoms());
  for (const Atom& atom : query.conditional_atoms()) {
    GUMBO_ASSIGN_OR_RETURN(AtomIndex idx, BuildIndex(atom, query.guard(), db));
    indexes.push_back(std::move(idx));
  }

  Relation out(query.output(), query.OutputArity());
  for (RowView fact : guard_rel->views()) {
    if (!query.guard().Conforms(fact)) continue;
    bool keep = true;
    if (query.has_condition()) {
      keep = query.condition()->Evaluate([&](size_t i) {
        const AtomIndex& idx = indexes[i];
        if (idx.key_is_empty) return idx.any_conforming;
        Tuple key = query.guard().Project(fact, idx.key_vars);
        return idx.keys.count(key) > 0;
      });
    }
    if (keep) {
      out.AddUnchecked(query.guard().Project(fact, query.select_vars()));
    }
  }
  out.SortAndDedupe();
  return out;
}

Result<Database> NaiveEvalSgf(const SgfQuery& query, const Database& db) {
  Database work = db;
  Database produced;
  for (const BsgfQuery& q : query.subqueries()) {
    GUMBO_ASSIGN_OR_RETURN(Relation rel, NaiveEvalBsgf(q, work));
    produced.Put(rel);
    work.Put(std::move(rel));
  }
  return produced;
}

}  // namespace gumbo::sgf
