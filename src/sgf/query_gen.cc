#include "sgf/query_gen.h"

#include <cstdio>
#include <cstdlib>

#include "common/dictionary.h"
#include "common/rng.h"

namespace gumbo::sgf {

namespace {

// The fixed relation pools. Guard G is 3-ary over (x, y, z); conditional
// base relations S/T/U/V are binary. Chain intermediates are binary
// (SELECT (x, y)), so a chain step's guard vars are {x, y}.
constexpr const char* kGuardVars[3] = {"x", "y", "z"};
constexpr const char* kCondRels[4] = {"S", "T", "U", "V"};

struct Builder {
  const QueryGenConfig* config;
  Xoshiro256 rng;
  GeneratedQuery out;
  /// Outputs produced so far (name -> arity), usable as later guards or
  /// conditional atoms.
  std::vector<std::pair<std::string, uint32_t>> produced;

  explicit Builder(const QueryGenConfig* c, uint64_t seed)
      : config(c), rng(SplitMix64::Mix(seed ^ 0x5f9e1ULL)) {}

  /// A term for a conditional atom: guard variable, fresh existential, or
  /// small constant.
  std::string Term(const std::vector<std::string>& guard_vars, size_t atom_i,
                   size_t pos) {
    switch (rng.Uniform(4)) {
      case 0:
      case 1:
        return guard_vars[rng.Uniform(guard_vars.size())];
      case 2:
        return "e" + std::to_string(atom_i) + "_" + std::to_string(pos);
      default:
        return std::to_string(rng.Uniform(config->max_constant));
    }
  }

  /// Renders one conditional atom over a binary relation. Only guard
  /// variables, per-atom existentials, and constants appear, so the
  /// guardedness restriction (shared variables between two conditional
  /// atoms must occur in the guard) holds by construction.
  std::string CondAtom(const std::vector<std::string>& guard_vars,
                       size_t atom_i) {
    std::string rel;
    uint32_t arity = 2;
    // Mixed shapes may probe an earlier output as a conditional atom.
    if (!produced.empty() && rng.Bernoulli(0.2)) {
      const auto& p = produced[rng.Uniform(produced.size())];
      rel = p.first;
      arity = p.second;
    } else {
      rel = kCondRels[rng.Uniform(4)];
      out.base_relations.emplace(rel, 2);
    }
    // First term is a guard variable (guarantees a nonempty join key so
    // the atom is a genuine semi-join, not a cross-product filter).
    std::string atom = rel + "(" + guard_vars[rng.Uniform(guard_vars.size())];
    for (uint32_t pos = 1; pos < arity; ++pos) {
      atom += ", " + Term(guard_vars, atom_i, pos);
    }
    return atom + ")";
  }

  /// Random right-assoc fold of `leaves` into one condition string, with
  /// per-shape NOT/AND biases.
  std::string Fold(std::vector<std::string> leaves, double p_not,
                   double p_and) {
    for (std::string& leaf : leaves) {
      if (rng.Bernoulli(p_not)) leaf = "NOT " + leaf;
    }
    while (leaves.size() > 1) {
      const size_t i = rng.Uniform(leaves.size() - 1);
      leaves[i] = "(" + leaves[i] +
                  (rng.Bernoulli(p_and) ? " AND " : " OR ") + leaves[i + 1] +
                  ")";
      leaves.erase(leaves.begin() + static_cast<long>(i) + 1);
    }
    return leaves[0];
  }

  std::string SelectList(const std::vector<std::string>& vars) {
    if (vars.size() == 1) return vars[0];
    std::string s = "(";
    for (size_t i = 0; i < vars.size(); ++i) {
      if (i > 0) s += ", ";
      s += vars[i];
    }
    return s + ")";
  }

  /// Appends one subquery statement: output := SELECT sel FROM
  /// guard(guard_vars) WHERE <natoms atoms folded with p_not/p_and>.
  void AddSubquery(const std::string& output, const std::string& guard_rel,
                   const std::vector<std::string>& guard_vars,
                   const std::vector<std::string>& select_vars, size_t natoms,
                   double p_not, double p_and) {
    std::vector<std::string> leaves;
    leaves.reserve(natoms);
    for (size_t i = 0; i < natoms; ++i) {
      leaves.push_back(CondAtom(guard_vars, out.statements.size() * 97 + i));
    }
    std::string stmt = output + " := SELECT " + SelectList(select_vars) +
                       " FROM " + guard_rel + "(";
    for (size_t i = 0; i < guard_vars.size(); ++i) {
      if (i > 0) stmt += ", ";
      stmt += guard_vars[i];
    }
    stmt += ")";
    if (!leaves.empty()) stmt += " WHERE " + Fold(std::move(leaves), p_not, p_and);
    stmt += ";";
    out.statements.push_back(std::move(stmt));
    produced.emplace_back(output,
                          static_cast<uint32_t>(select_vars.size()));
  }

  /// Random non-empty subset of `vars`, preserving order.
  std::vector<std::string> RandomSelect(const std::vector<std::string>& vars) {
    std::vector<std::string> sel;
    for (const std::string& v : vars) {
      if (rng.Bernoulli(0.5)) sel.push_back(v);
    }
    if (sel.empty()) sel.push_back(vars[rng.Uniform(vars.size())]);
    return sel;
  }
};

}  // namespace

const char* QueryShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kWideFanout:
      return "wide-fanout";
    case QueryShape::kDeepChain:
      return "deep-chain";
    case QueryShape::kAntiJoinHeavy:
      return "anti-join-heavy";
    case QueryShape::kMixed:
      return "mixed";
  }
  return "?";
}

std::string GeneratedQuery::Text() const {
  std::string text;
  for (const std::string& s : statements) {
    if (!text.empty()) text += "\n";
    text += s;
  }
  return text;
}

GeneratedQuery QueryGenerator::Generate(uint64_t seed) const {
  Builder b(&config_, seed);
  b.out.shape = config_.shape;
  const std::vector<std::string> gvars = {kGuardVars[0], kGuardVars[1],
                                          kGuardVars[2]};
  b.out.base_relations.emplace("G", 3);

  switch (config_.shape) {
    case QueryShape::kWideFanout: {
      // One guard, many conditionals: the 1-ROUND-vs-multi-round
      // discrimination gets harder as fan-out grows (more X_i
      // intermediates, more upper-bound estimation error).
      const size_t natoms = config_.fanout + b.rng.Uniform(3);
      b.AddSubquery("Z", "G", gvars, b.RandomSelect(gvars), natoms,
                    /*p_not=*/0.25, /*p_and=*/0.6);
      break;
    }
    case QueryShape::kDeepChain: {
      // Z1 over G selects (x, y); each further step guards on the
      // previous output — the regime where catalog upper bounds compound
      // round over round.
      const std::vector<std::string> chain_vars = {kGuardVars[0],
                                                   kGuardVars[1]};
      b.AddSubquery("Z1", "G", gvars, chain_vars, 1 + b.rng.Uniform(3),
                    /*p_not=*/0.25, /*p_and=*/0.6);
      for (size_t d = 2; d <= config_.chain_depth; ++d) {
        b.AddSubquery("Z" + std::to_string(d), "Z" + std::to_string(d - 1),
                      chain_vars, chain_vars, 1 + b.rng.Uniform(3),
                      /*p_not=*/0.25, /*p_and=*/0.6);
      }
      break;
    }
    case QueryShape::kAntiJoinHeavy: {
      // Mostly negated atoms under AND: anti-join requests cannot be
      // Bloom-filtered (only asserts are), so this shape stresses the
      // filter/combiner accounting as well as NOT-semantics.
      const size_t natoms = 3 + b.rng.Uniform(4);
      b.AddSubquery("Z", "G", gvars, b.RandomSelect(gvars), natoms,
                    /*p_not=*/0.8, /*p_and=*/0.85);
      break;
    }
    case QueryShape::kMixed: {
      const size_t subqueries = 1 + b.rng.Uniform(3);
      std::vector<std::string> prev_vars = gvars;
      std::string prev_out;
      for (size_t s = 1; s <= subqueries; ++s) {
        const std::string output = "Z" + std::to_string(s);
        std::string guard = "G";
        std::vector<std::string> guard_vars = gvars;
        if (!prev_out.empty() && b.rng.Bernoulli(0.5)) {
          guard = prev_out;
          guard_vars = prev_vars;
        }
        std::vector<std::string> sel = b.RandomSelect(guard_vars);
        b.AddSubquery(output, guard, guard_vars, sel, 1 + b.rng.Uniform(4),
                      /*p_not=*/0.35, /*p_and=*/0.55);
        prev_out = output;
        prev_vars = sel;
      }
      break;
    }
  }

  Result<SgfQuery> parsed =
      ParseSgf(b.out.Text(), &Dictionary::Global());
  if (!parsed.ok()) {
    // A generated query failing to parse is a generator bug, not an input
    // problem — fail loudly with the repro.
    std::fprintf(stderr,
                 "QueryGenerator produced an unparseable query (seed %llu):\n"
                 "%s\n%s\n",
                 static_cast<unsigned long long>(seed), b.out.Text().c_str(),
                 parsed.status().ToString().c_str());
    std::abort();
  }
  b.out.query = std::move(*parsed);
  return b.out;
}

}  // namespace gumbo::sgf
