// Naive single-machine reference evaluator for (B)SGF queries.
//
// Implements the paper's semantics (§3.1) directly: for every guard fact
// conforming to the guard atom, evaluate the Boolean condition, where a
// conditional atom kappa is true iff some kappa-conforming fact agrees with
// the guard fact on the shared variables. Serves as ground truth for every
// MapReduce strategy in the test suite.
//
// Complexity: O(|guard| * |condition|) after building one hash index per
// conditional atom over its key projection.
#ifndef GUMBO_SGF_NAIVE_EVAL_H_
#define GUMBO_SGF_NAIVE_EVAL_H_

#include "common/relation.h"
#include "common/result.h"
#include "sgf/sgf.h"

namespace gumbo::sgf {

/// Evaluates one basic query against `db`, returning the output relation
/// (deduplicated, sorted). Does not modify `db`.
Result<Relation> NaiveEvalBsgf(const BsgfQuery& query, const Database& db);

/// Evaluates a full SGF query: subqueries in order, each output added to a
/// copy of the database so later subqueries can reference it. Returns a
/// database holding *all* produced relations Z1..Zn.
Result<Database> NaiveEvalSgf(const SgfQuery& query, const Database& db);

}  // namespace gumbo::sgf

#endif  // GUMBO_SGF_NAIVE_EVAL_H_
