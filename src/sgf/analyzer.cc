#include "sgf/analyzer.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace gumbo::sgf {

namespace {

Status CheckArityConsistency(const BsgfQuery& q,
                             std::map<std::string, uint32_t>* arities) {
  auto check = [&](const Atom& a) -> Status {
    auto [it, inserted] = arities->emplace(a.relation(), a.arity());
    if (!inserted && it->second != a.arity()) {
      return Status::InvalidArgument(
          "relation " + a.relation() + " used with arities " +
          std::to_string(it->second) + " and " + std::to_string(a.arity()));
    }
    return Status::Ok();
  };
  GUMBO_RETURN_IF_ERROR(check(q.guard()));
  for (const Atom& a : q.conditional_atoms()) {
    GUMBO_RETURN_IF_ERROR(check(a));
  }
  return Status::Ok();
}

}  // namespace

Status ValidateBsgf(const BsgfQuery& query) {
  if (query.output().empty()) {
    return Status::InvalidArgument("query has no output name");
  }
  if (query.select_vars().empty()) {
    return Status::InvalidArgument(query.output() +
                                   ": empty SELECT variable list");
  }
  // Select variables must occur in the guard.
  for (const std::string& v : query.select_vars()) {
    if (!query.guard().UsesVariable(v)) {
      return Status::InvalidArgument(query.output() + ": select variable " +
                                     v + " does not occur in the guard " +
                                     query.guard().ToString());
    }
  }
  // Condition atom indices must be in range, and every listed atom should
  // be referenced by the condition.
  if (query.has_condition()) {
    std::vector<size_t> used;
    query.condition()->CollectAtomIndices(&used);
    for (size_t i : used) {
      if (i >= query.num_conditional_atoms()) {
        return Status::Internal(query.output() +
                                ": condition references atom index " +
                                std::to_string(i) + " out of range");
      }
    }
    for (size_t i = 0; i < query.num_conditional_atoms(); ++i) {
      if (std::find(used.begin(), used.end(), i) == used.end()) {
        return Status::InvalidArgument(
            query.output() + ": conditional atom " +
            query.conditional_atoms()[i].ToString() +
            " is not referenced by the condition");
      }
    }
  } else if (query.num_conditional_atoms() > 0) {
    return Status::Internal(query.output() +
                            ": conditional atoms without a condition");
  }
  // Guardedness: two distinct conditional atoms may only share variables
  // that occur in the guard.
  const auto& atoms = query.conditional_atoms();
  for (size_t i = 0; i < atoms.size(); ++i) {
    for (size_t j = i + 1; j < atoms.size(); ++j) {
      if (atoms[i] == atoms[j]) continue;  // identical atoms are one atom
      for (const std::string& v : atoms[i].Variables()) {
        if (atoms[j].UsesVariable(v) && !query.guard().UsesVariable(v)) {
          return Status::InvalidArgument(
              query.output() + ": variable " + v + " shared by " +
              atoms[i].ToString() + " and " + atoms[j].ToString() +
              " does not occur in the guard (violates guardedness)");
        }
      }
    }
  }
  // Arity consistency within the query.
  std::map<std::string, uint32_t> arities;
  return CheckArityConsistency(query, &arities);
}

Status ValidateSgf(const SgfQuery& query) {
  if (query.empty()) {
    return Status::InvalidArgument("SGF query has no subqueries");
  }
  std::set<std::string> defined;
  std::map<std::string, uint32_t> arities;
  for (size_t i = 0; i < query.size(); ++i) {
    const BsgfQuery& q = query.subqueries()[i];
    GUMBO_RETURN_IF_ERROR(ValidateBsgf(q));
    if (defined.count(q.output()) > 0) {
      return Status::InvalidArgument("output " + q.output() +
                                     " defined more than once");
    }
    // Forward references: any input produced by a *later* subquery.
    for (const std::string& rel : q.InputRelations()) {
      int producer = query.ProducerOf(rel);
      if (producer >= 0 && static_cast<size_t>(producer) >= i) {
        return Status::InvalidArgument(
            q.output() + " references " + rel +
            ", which is not defined by an earlier subquery");
      }
    }
    // Output arity consistency with later uses.
    auto [it, inserted] = arities.emplace(q.output(), q.OutputArity());
    if (!inserted && it->second != q.OutputArity()) {
      return Status::InvalidArgument(
          "output " + q.output() + " arity " +
          std::to_string(q.OutputArity()) + " conflicts with use of arity " +
          std::to_string(it->second));
    }
    GUMBO_RETURN_IF_ERROR(CheckArityConsistency(q, &arities));
    defined.insert(q.output());
  }
  if (!query.BuildDependencyGraph().IsAcyclic()) {
    return Status::InvalidArgument("dependency graph has a cycle");
  }
  return Status::Ok();
}

}  // namespace gumbo::sgf
