#include "sgf/sgf.h"

#include <algorithm>
#include <set>

namespace gumbo::sgf {

void DependencyGraph::AddEdge(size_t from, size_t to) {
  if (HasEdge(from, to)) return;
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

bool DependencyGraph::HasEdge(size_t from, size_t to) const {
  return std::find(succ_[from].begin(), succ_[from].end(), to) !=
         succ_[from].end();
}

bool DependencyGraph::IsAcyclic() const {
  // Kahn's algorithm.
  std::vector<size_t> indeg(size(), 0);
  for (size_t i = 0; i < size(); ++i) indeg[i] = pred_[i].size();
  std::vector<size_t> ready;
  for (size_t i = 0; i < size(); ++i) {
    if (indeg[i] == 0) ready.push_back(i);
  }
  size_t seen = 0;
  while (!ready.empty()) {
    size_t u = ready.back();
    ready.pop_back();
    ++seen;
    for (size_t v : succ_[u]) {
      if (--indeg[v] == 0) ready.push_back(v);
    }
  }
  return seen == size();
}

int SgfQuery::ProducerOf(const std::string& name) const {
  for (size_t i = 0; i < subqueries_.size(); ++i) {
    if (subqueries_[i].output() == name) return static_cast<int>(i);
  }
  return -1;
}

DependencyGraph SgfQuery::BuildDependencyGraph() const {
  DependencyGraph g(subqueries_.size());
  for (size_t j = 0; j < subqueries_.size(); ++j) {
    for (const std::string& rel : subqueries_[j].InputRelations()) {
      int i = ProducerOf(rel);
      if (i >= 0 && static_cast<size_t>(i) != j) {
        g.AddEdge(static_cast<size_t>(i), j);
      }
    }
  }
  return g;
}

std::vector<std::string> SgfQuery::ProducedNames() const {
  std::vector<std::string> out;
  out.reserve(subqueries_.size());
  for (const auto& q : subqueries_) out.push_back(q.output());
  return out;
}

std::vector<std::string> SgfQuery::BaseRelations() const {
  std::set<std::string> produced;
  for (const auto& q : subqueries_) produced.insert(q.output());
  std::vector<std::string> out;
  for (const auto& q : subqueries_) {
    for (const std::string& rel : q.InputRelations()) {
      if (produced.count(rel) == 0 &&
          std::find(out.begin(), out.end(), rel) == out.end()) {
        out.push_back(rel);
      }
    }
  }
  return out;
}

std::vector<std::string> SgfQuery::SinkNames() const {
  std::set<std::string> consumed;
  for (const auto& q : subqueries_) {
    for (const std::string& rel : q.InputRelations()) consumed.insert(rel);
  }
  std::vector<std::string> out;
  for (const auto& q : subqueries_) {
    if (consumed.count(q.output()) == 0) out.push_back(q.output());
  }
  return out;
}

std::string SgfQuery::ToString(const Dictionary* dict) const {
  std::string out;
  for (const auto& q : subqueries_) {
    out += q.ToString(dict);
    out += ";\n";
  }
  return out;
}

}  // namespace gumbo::sgf
