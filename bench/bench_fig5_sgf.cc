// Reproduces Figure 5 (paper §5.3): nested SGF query sets C1-C4 under
// SEQUNIT / PARUNIT / GREEDY-SGF, values relative to SEQUNIT.
#include <cstdio>

#include "bench_harness.h"

using namespace gumbo;
using namespace gumbo::bench;

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  std::printf(
      "Figure 5: SGF query sets C1-C4 across evaluation strategies\n"
      "(materialized %zu tuples/relation)\n\n",
      options.tuples);

  const std::vector<std::string> columns = {"SEQUNIT", "PARUNIT",
                                            "GREEDY-SGF"};
  std::vector<std::string> row_names;
  std::vector<std::vector<CellResult>> rows;

  for (int qi = 1; qi <= 4; ++qi) {
    auto w = data::MakeC(qi, options.MakeGeneratorConfig());
    if (!w.ok()) {
      std::fprintf(stderr, "C%d: %s\n", qi, w.status().ToString().c_str());
      return 1;
    }
    std::vector<CellResult> row;
    row.push_back(RunStrategy(*w, plan::Strategy::kSeqUnit, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kParUnit, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kGreedySgf, options));
    row_names.push_back(w->name);
    rows.push_back(std::move(row));
    std::printf("  ... %s done\n", w->name.c_str());
  }
  std::printf("\n");
  PrintMetricBlock("Figure 5: C1-C4", columns, rows, row_names);
  return 0;
}
