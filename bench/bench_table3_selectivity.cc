// Reproduces Table 3 (paper §5.4): the increase in net and total time
// when the conditional selectivity rate changes from 0.1 (high
// selectivity) to 0.9 (low selectivity), for queries A1-A3 under
// SEQ / PAR / GREEDY. Also prints the full sweep.
#include <cstdio>
#include <map>

#include "bench_harness.h"
#include "common/str_util.h"
#include "common/table_printer.h"

using namespace gumbo;
using namespace gumbo::bench;

int main() {
  BenchOptions base = BenchOptions::FromEnv();
  std::printf("Table 3: selectivity sweep on A1-A3\n\n");

  const std::vector<double> rates = {0.1, 0.3, 0.5, 0.7, 0.9};
  const std::vector<std::pair<std::string, plan::Strategy>> strategies = {
      {"SEQ", plan::Strategy::kSeq},
      {"PAR", plan::Strategy::kPar},
      {"GREEDY", plan::Strategy::kGreedy},
  };

  // results[query][strategy][rate]
  std::map<std::string, std::map<std::string, std::map<double, CellResult>>>
      results;
  for (int qi = 1; qi <= 3; ++qi) {
    for (double rate : rates) {
      BenchOptions options = base;
      options.selectivity = rate;
      auto w = data::MakeA(qi, options.MakeGeneratorConfig());
      if (!w.ok()) {
        std::fprintf(stderr, "A%d: %s\n", qi, w.status().ToString().c_str());
        return 1;
      }
      for (const auto& [name, strategy] : strategies) {
        results[w->name][name][rate] = RunStrategy(*w, strategy, options);
      }
      std::printf("  ... A%d selectivity %.1f done\n", qi, rate);
    }
  }

  // Full sweep detail.
  for (const char* metric : {"net", "total"}) {
    bool net = std::string(metric) == "net";
    std::printf("\n-- %s time (s) by selectivity rate --\n", metric);
    std::vector<std::string> header = {"Strategy/Query"};
    for (double r : rates) header.push_back(StrFormat("%.1f", r));
    TablePrinter tp(header);
    for (const auto& [qname, per_strategy] : results) {
      for (const auto& [sname, per_rate] : per_strategy) {
        std::vector<std::string> row = {sname + " " + qname};
        for (double r : rates) {
          const CellResult& c = per_rate.at(r);
          row.push_back(c.ok ? StrFormat("%.0f", net
                                                     ? c.metrics.net_time
                                                     : c.metrics.total_time)
                             : "--");
        }
        tp.AddRow(std::move(row));
      }
    }
    std::printf("%s", tp.Render().c_str());
  }

  // The paper's Table 3: percentage increase from 0.1 to 0.9.
  std::printf("\n==== Table 3: increase from selectivity 0.1 to 0.9 ====\n");
  TablePrinter tp({"", "Net A1", "Net A2", "Net A3", "Total A1", "Total A2",
                   "Total A3"});
  for (const auto& [sname, unused] : std::map<std::string, int>{
           {"SEQ", 0}, {"PAR", 0}, {"GREEDY", 0}}) {
    std::vector<std::string> row = {sname};
    for (bool net : {true, false}) {
      for (int qi = 1; qi <= 3; ++qi) {
        std::string qname = "A" + std::to_string(qi);
        const CellResult& lo = results[qname][sname][0.1];
        const CellResult& hi = results[qname][sname][0.9];
        if (lo.ok && hi.ok) {
          double a = net ? lo.metrics.net_time : lo.metrics.total_time;
          double b = net ? hi.metrics.net_time : hi.metrics.total_time;
          row.push_back(StrFormat("%.0f%%", 100.0 * (b - a) / a));
        } else {
          row.push_back("--");
        }
      }
    }
    tp.AddRow(std::move(row));
  }
  std::printf("%s", tp.Render().c_str());
  return 0;
}
