// Reproduces Table 3 (paper §5.4): the increase in net and total time
// when the conditional selectivity rate changes from 0.1 (high
// selectivity) to 0.9 (low selectivity), for queries A1-A3 under
// SEQ / PAR / GREEDY. Also prints the full sweep.
//
// Extended with a calibration study (DESIGN.md §10): on Zipf-skewed
// guards with cold conditionals, the uniform-calibrated cost model works
// from catalog upper bounds that wildly overestimate how much a semi-
// join chain shrinks, so it mis-ranks the multi-round strategies; after
// the self-calibration loop observes a few executions of the same
// regime, the re-estimated ranking flips to the observed-fastest
// strategy.
#include <cstdio>
#include <map>

#include "bench_harness.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "cost/calibration.h"
#include "sgf/parser.h"

using namespace gumbo;
using namespace gumbo::bench;

namespace {

// The study query: a 3-conditional chain whose SEQ intermediates shrink
// hard under cold conditionals (every candidate strategy applies).
constexpr const char* kStudyQuery =
    "Z := SELECT (x, y, z) FROM G(x, y, z) WHERE S(x) AND T(y) AND U(z);";

struct RegimeSpec {
  const char* name;
  double theta;       // guard skew (ZipfGuard)
  bool cold;          // cold vs hot conditionals
  double selectivity;
};

Database MakeSkewDb(const data::GeneratorConfig& g, const RegimeSpec& spec) {
  data::Generator gen(g);
  Database db;
  db.Put(gen.ZipfGuard("G", 3, spec.theta));
  for (const char* c : {"S", "T", "U"}) {
    db.Put(spec.cold ? gen.ColdConditional(c, 1) : gen.HotConditional(c, 1));
  }
  return db;
}

struct StudyRun {
  bool ok = false;
  double total = 0.0;
};

// Plans + executes one strategy; optionally estimates through `cal` and
// feeds the observed stats back into `feed` (the calibration loop).
StudyRun RunOne(const sgf::SgfQuery& query, const Database& db,
                const cost::ClusterConfig& cluster, plan::Strategy strategy,
                const cost::CalibrationStore* cal,
                cost::CalibrationStore* feed) {
  plan::PlannerOptions opts;
  opts.strategy = strategy;
  opts.calibration = cal;
  plan::Planner planner(cluster, opts);
  auto plan = planner.Plan(query, db);
  if (!plan.ok()) return {};
  mr::Engine engine(cluster);
  mr::Runtime runtime(&engine);
  Database out;
  auto run = plan::ExecutePlanOnSnapshot(*plan, runtime, db, &out);
  if (!run.ok()) return {};
  if (feed != nullptr) plan::CalibrateFromExecution(*plan, run->stats, feed);
  // ChoosePlan ranks by summed estimated job cost — the §5.3 total-time
  // analogue — so the observed ground truth is total (cluster work) time.
  return {true, run->metrics.total_time};
}

void RunCalibrationStudy(const BenchOptions& base) {
  std::printf(
      "\n==== Calibration study: strategy choice on Zipf data "
      "(DESIGN.md §10) ====\n"
      "uncal = uniform-calibrated model (no observations for the skewed\n"
      "regime), cal = after self-calibration on observed executions.\n\n");
  const std::vector<RegimeSpec> regimes = {
      {"zipf1.2-cold", 1.2, true, 0.3},
      {"zipf1.5-cold", 1.5, true, 0.3},
      {"zipf1.5-hot", 1.5, false, 0.3},
  };
  const std::vector<plan::Strategy> candidates = {
      plan::Strategy::kOneRound, plan::Strategy::kSeq, plan::Strategy::kPar,
      plan::Strategy::kGreedy};

  auto query = sgf::ParseSgf(kStudyQuery, &Dictionary::Global());
  if (!query.ok()) {
    std::fprintf(stderr, "study query: %s\n",
                 query.status().ToString().c_str());
    return;
  }

  TablePrinter tp({"Regime", "Observed best", "uncal pick", "cal pick",
                   "total uncal (s)", "total cal (s)", "flip"});
  bool any_corrected_misplan = false;
  for (const RegimeSpec& spec : regimes) {
    data::GeneratorConfig g = base.MakeGeneratorConfig();
    g.selectivity = spec.selectivity;
    const Database db = MakeSkewDb(g, spec);

    // Ground truth + training: execute every candidate, observing each
    // strategy's actual net time and feeding the calibration store. Two
    // rounds settle the geometric-mean factors.
    cost::CalibrationStore store;
    std::map<plan::Strategy, double> observed;
    for (int round = 0; round < 2; ++round) {
      for (plan::Strategy s : candidates) {
        StudyRun r = RunOne(*query, db, base.cluster, s,
                            round > 0 ? &store : nullptr, &store);
        if (r.ok && round == 0) observed[s] = r.total;
      }
    }
    if (observed.empty()) continue;
    plan::Strategy best = observed.begin()->first;
    for (const auto& [s, net] : observed) {
      if (net < observed[best]) best = s;
    }

    plan::PlannerOptions opts;  // uncal: no calibration store
    auto uncal = plan::ChoosePlan(*query, db, base.cluster, opts, candidates);
    opts.calibration = &store;
    auto cal = plan::ChoosePlan(*query, db, base.cluster, opts, candidates);
    if (!uncal.ok() || !cal.ok()) continue;

    const bool misplanned = uncal->strategy != best;
    const bool corrected = cal->strategy == best;
    any_corrected_misplan |= misplanned && corrected;
    tp.AddRow({spec.name, plan::StrategyName(best),
               plan::StrategyName(uncal->strategy),
               plan::StrategyName(cal->strategy),
               StrFormat("%.0f", observed[uncal->strategy]),
               StrFormat("%.0f", observed[cal->strategy]),
               misplanned ? (corrected ? "corrected" : "still off")
                          : "no misplan"});
  }
  std::printf("%s", tp.Render().c_str());
  std::printf(any_corrected_misplan
                  ? "\ncalibration corrected a uniform-model misplan\n"
                  : "\nWARNING: no misplan corrected in this configuration\n");
}

}  // namespace

int main() {
  BenchOptions base = BenchOptions::FromEnv();
  std::printf("Table 3: selectivity sweep on A1-A3\n\n");

  const std::vector<double> rates = {0.1, 0.3, 0.5, 0.7, 0.9};
  const std::vector<std::pair<std::string, plan::Strategy>> strategies = {
      {"SEQ", plan::Strategy::kSeq},
      {"PAR", plan::Strategy::kPar},
      {"GREEDY", plan::Strategy::kGreedy},
  };

  // results[query][strategy][rate]
  std::map<std::string, std::map<std::string, std::map<double, CellResult>>>
      results;
  for (int qi = 1; qi <= 3; ++qi) {
    for (double rate : rates) {
      BenchOptions options = base;
      options.selectivity = rate;
      auto w = data::MakeA(qi, options.MakeGeneratorConfig());
      if (!w.ok()) {
        std::fprintf(stderr, "A%d: %s\n", qi, w.status().ToString().c_str());
        return 1;
      }
      for (const auto& [name, strategy] : strategies) {
        results[w->name][name][rate] = RunStrategy(*w, strategy, options);
      }
      std::printf("  ... A%d selectivity %.1f done\n", qi, rate);
    }
  }

  // Full sweep detail.
  for (const char* metric : {"net", "total"}) {
    bool net = std::string(metric) == "net";
    std::printf("\n-- %s time (s) by selectivity rate --\n", metric);
    std::vector<std::string> header = {"Strategy/Query"};
    for (double r : rates) header.push_back(StrFormat("%.1f", r));
    TablePrinter tp(header);
    for (const auto& [qname, per_strategy] : results) {
      for (const auto& [sname, per_rate] : per_strategy) {
        std::vector<std::string> row = {sname + " " + qname};
        for (double r : rates) {
          const CellResult& c = per_rate.at(r);
          row.push_back(c.ok ? StrFormat("%.0f", net
                                                     ? c.metrics.net_time
                                                     : c.metrics.total_time)
                             : "--");
        }
        tp.AddRow(std::move(row));
      }
    }
    std::printf("%s", tp.Render().c_str());
  }

  // The paper's Table 3: percentage increase from 0.1 to 0.9.
  std::printf("\n==== Table 3: increase from selectivity 0.1 to 0.9 ====\n");
  TablePrinter tp({"", "Net A1", "Net A2", "Net A3", "Total A1", "Total A2",
                   "Total A3"});
  for (const auto& [sname, unused] : std::map<std::string, int>{
           {"SEQ", 0}, {"PAR", 0}, {"GREEDY", 0}}) {
    std::vector<std::string> row = {sname};
    for (bool net : {true, false}) {
      for (int qi = 1; qi <= 3; ++qi) {
        std::string qname = "A" + std::to_string(qi);
        const CellResult& lo = results[qname][sname][0.1];
        const CellResult& hi = results[qname][sname][0.9];
        if (lo.ok && hi.ok) {
          double a = net ? lo.metrics.net_time : lo.metrics.total_time;
          double b = net ? hi.metrics.net_time : hi.metrics.total_time;
          row.push_back(StrFormat("%.0f%%", 100.0 * (b - a) / a));
        } else {
          row.push_back("--");
        }
      }
    }
    tp.AddRow(std::move(row));
  }
  std::printf("%s", tp.Render().c_str());

  RunCalibrationStudy(base);
  return 0;
}
