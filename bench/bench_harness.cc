#include "bench_harness.h"

#include <cstdio>

#include "common/config.h"
#include "common/str_util.h"
#include "mr/engine.h"

namespace gumbo::bench {

BenchOptions BenchOptions::FromEnv() {
  const common::RuntimeConfig& cfg = common::RuntimeConfig::Get();
  BenchOptions o;
  o.tuples = cfg.bench_tuples.value_or(o.tuples);
  o.seed = cfg.bench_seed.value_or(o.seed);
  if (cfg.bench_sequential.value_or(false)) {
    o.runtime.concurrent_jobs = false;
  }
  return o;
}

CellResult RunStrategy(const data::Workload& w, plan::Strategy strategy,
                       const BenchOptions& options,
                       cost::CostModelVariant variant, ops::OpOptions op) {
  CellResult cell;
  plan::PlannerOptions popts;
  popts.strategy = strategy;
  popts.cost_variant = variant;
  popts.op = op;
  plan::Planner planner(options.cluster, popts);
  mr::Engine engine(options.cluster);
  mr::Runtime runtime(&engine, options.runtime);
  Database db = w.db;
  auto plan = planner.Plan(w.query, db);
  if (!plan.ok()) {
    cell.error = plan.status().ToString();
    return cell;
  }
  auto result = plan::ExecutePlan(*plan, runtime, &db);
  if (!result.ok()) {
    cell.error = result.status().ToString();
    return cell;
  }
  cell.ok = true;
  cell.metrics = result->metrics;
  return cell;
}

CellResult RunBaseline(const data::Workload& w, baselines::BaselineKind kind,
                       const BenchOptions& options) {
  CellResult cell;
  auto plan = baselines::PlanBaseline(kind, w.query, w.db);
  if (!plan.ok()) {
    cell.error = plan.status().ToString();
    return cell;
  }
  mr::Engine engine(options.cluster);
  mr::Runtime runtime(&engine, options.runtime);
  Database db = w.db;
  auto result = plan::ExecutePlan(*plan, runtime, &db);
  if (!result.ok()) {
    cell.error = result.status().ToString();
    return cell;
  }
  cell.ok = true;
  cell.metrics = result->metrics;
  return cell;
}

std::string FmtTime(const CellResult& r, double plan::Metrics::*field) {
  if (!r.ok) return "--";
  return StrFormat("%.0f", r.metrics.*field);
}

std::string FmtGb(const CellResult& r, double plan::Metrics::*field) {
  if (!r.ok) return "--";
  return StrFormat("%.1f", r.metrics.*field / 1024.0);
}

std::string FmtRel(const CellResult& r, const CellResult& base,
                   double plan::Metrics::*field) {
  if (!r.ok || !base.ok || base.metrics.*field <= 0.0) return "--";
  return StrFormat("%.0f%%", 100.0 * (r.metrics.*field) /
                                 (base.metrics.*field));
}

void PrintMetricBlock(const std::string& title,
                      const std::vector<std::string>& col_names,
                      const std::vector<std::vector<CellResult>>& rows,
                      const std::vector<std::string>& row_names) {
  struct MetricDef {
    const char* name;
    double plan::Metrics::*field;
    bool gb;
  };
  const MetricDef metrics[] = {
      {"Net time (s)", &plan::Metrics::net_time, false},
      {"Total time (s)", &plan::Metrics::total_time, false},
      {"Input (GB)", &plan::Metrics::input_mb, true},
      {"Communication (GB)", &plan::Metrics::communication_mb, true},
  };
  std::printf("==== %s ====\n", title.c_str());
  for (const auto& m : metrics) {
    std::vector<std::string> header = {std::string(m.name)};
    for (const auto& c : col_names) header.push_back(c);
    TablePrinter abs(header);
    TablePrinter rel(header);
    for (size_t r = 0; r < rows.size(); ++r) {
      std::vector<std::string> abs_row = {row_names[r]};
      std::vector<std::string> rel_row = {row_names[r]};
      for (size_t c = 0; c < rows[r].size(); ++c) {
        abs_row.push_back(m.gb ? FmtGb(rows[r][c], m.field)
                               : FmtTime(rows[r][c], m.field));
        rel_row.push_back(FmtRel(rows[r][c], rows[r][0], m.field));
      }
      abs.AddRow(std::move(abs_row));
      rel.AddRow(std::move(rel_row));
    }
    std::printf("%s", abs.Render().c_str());
    std::printf("-- relative to %s --\n%s\n", col_names[0].c_str(),
                rel.Render().c_str());
  }

  // Scheduler view: how many rounds / jobs each strategy needs and how
  // long the round runtime took in real wall-clock.
  struct SchedDef {
    const char* name;
    std::string (*fmt)(const plan::Metrics&);
  };
  const SchedDef sched[] = {
      {"Rounds", [](const plan::Metrics& m) { return std::to_string(m.rounds); }},
      {"Jobs", [](const plan::Metrics& m) { return std::to_string(m.jobs); }},
      {"Max jobs/round",
       [](const plan::Metrics& m) { return std::to_string(m.max_jobs_per_round); }},
      {"Wall (ms)",
       [](const plan::Metrics& m) { return StrFormat("%.1f", m.wall_ms); }},
  };
  for (const auto& m : sched) {
    std::vector<std::string> header = {std::string(m.name)};
    for (const auto& c : col_names) header.push_back(c);
    TablePrinter table(header);
    for (size_t r = 0; r < rows.size(); ++r) {
      std::vector<std::string> row = {row_names[r]};
      for (size_t c = 0; c < rows[r].size(); ++c) {
        row.push_back(rows[r][c].ok ? m.fmt(rows[r][c].metrics)
                                    : std::string("--"));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.Render().c_str());
  }
  std::printf("\n");
}

}  // namespace gumbo::bench
