// Reproduces Figure 3 (paper §5.2): BSGF queries A1-A5 under
// SEQ / PAR / GREEDY / HPAR / HPARS / PPAR (and 1-ROUND where it
// applies, i.e. A3), reporting net time, total time, HDFS input, and
// mapper->reducer communication — absolute and relative to SEQ.
#include <cstdio>

#include "bench_harness.h"

using namespace gumbo;
using namespace gumbo::bench;

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  std::printf(
      "Figure 3: BSGF queries A1-A5 across evaluation strategies\n"
      "(materialized %zu tuples/relation; represents 100M-tuple paper "
      "scale)\n\n",
      options.tuples);

  const std::vector<std::string> columns = {"SEQ",   "PAR",  "GREEDY",
                                            "HPAR",  "HPARS", "PPAR",
                                            "1-ROUND"};
  std::vector<std::string> row_names;
  std::vector<std::vector<CellResult>> rows;

  for (int qi = 1; qi <= 5; ++qi) {
    auto w = data::MakeA(qi, options.MakeGeneratorConfig());
    if (!w.ok()) {
      std::fprintf(stderr, "A%d: %s\n", qi, w.status().ToString().c_str());
      return 1;
    }
    std::vector<CellResult> row;
    row.push_back(RunStrategy(*w, plan::Strategy::kSeq, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kPar, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kGreedy, options));
    row.push_back(RunBaseline(*w, baselines::BaselineKind::kHivePar, options));
    row.push_back(
        RunBaseline(*w, baselines::BaselineKind::kHiveParSemiJoin, options));
    row.push_back(RunBaseline(*w, baselines::BaselineKind::kPigPar, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kOneRound, options));
    row_names.push_back(w->name);
    rows.push_back(std::move(row));
    std::printf("  ... %s done\n", w->name.c_str());
  }
  std::printf("\n");
  PrintMetricBlock("Figure 3: A1-A5 (1-ROUND applies to A3 only)", columns,
                   rows, row_names);
  return 0;
}
