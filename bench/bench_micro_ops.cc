// Micro-benchmarks (google-benchmark) of the hot paths: tuple hashing,
// atom conformance, the MSJ map function, engine job throughput, parsing,
// the naive evaluator, and the planners. These measure real wall-clock
// performance of the library (unlike the fig/table benches, which report
// the paper's simulated cost-model metrics).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/workloads.h"
#include "mr/engine.h"
#include "plan/executor.h"
#include "ops/msj.h"
#include "plan/grouping.h"
#include "plan/planner.h"
#include "sgf/naive_eval.h"
#include "sgf/parser.h"

namespace gumbo {
namespace {

data::GeneratorConfig SmallConfig(size_t tuples) {
  data::GeneratorConfig g;
  g.tuples = tuples;
  g.representation_scale = 1.0;
  return g;
}

void BM_TupleHash(benchmark::State& state) {
  std::vector<Tuple> tuples;
  Xoshiro256 rng(1);
  for (int i = 0; i < 1024; ++i) {
    tuples.push_back(Tuple::Ints({static_cast<int64_t>(rng.Next() % 1000),
                                  static_cast<int64_t>(rng.Next() % 1000),
                                  static_cast<int64_t>(rng.Next() % 1000),
                                  static_cast<int64_t>(rng.Next() % 1000)}));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuples[i++ & 1023].Hash());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleHash);

void BM_AtomConforms(benchmark::State& state) {
  sgf::Atom atom("R", {sgf::Term::Var("x"), sgf::Term::ConstInt(2),
                       sgf::Term::Var("x"), sgf::Term::Var("y")});
  Tuple hit = Tuple::Ints({1, 2, 1, 3});
  Tuple miss = Tuple::Ints({1, 2, 7, 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(atom.Conforms(hit));
    benchmark::DoNotOptimize(atom.Conforms(miss));
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_AtomConforms);

void BM_MsjMapFunction(benchmark::State& state) {
  auto w = data::MakeA(static_cast<int>(state.range(0)),
                       SmallConfig(10000));
  if (!w.ok()) {
    state.SkipWithError("workload");
    return;
  }
  const sgf::BsgfQuery& q = w->query.subqueries()[0];
  std::vector<ops::SemiJoinEquation> eqs;
  for (size_t i = 0; i < q.num_conditional_atoms(); ++i) {
    ops::SemiJoinEquation eq;
    eq.output = "__X" + std::to_string(i);
    eq.guard = q.guard();
    eq.guard_dataset = q.guard().relation();
    eq.conditional = q.conditional_atoms()[i];
    eq.conditional_dataset = q.conditional_atoms()[i].relation();
    eqs.push_back(std::move(eq));
  }
  auto job = ops::BuildMsjJob(eqs, ops::OpOptions{}, "bm");
  if (!job.ok()) {
    state.SkipWithError("job");
    return;
  }
  const Relation* guard = w->db.Get("R").value();
  for (auto _ : state) {
    // A fresh flat buffer per pass: the measured figure now includes the
    // real emission path (fingerprint grouping included), matching what
    // the engine pays per map task.
    mr::MapOutputBuffer sink;
    auto mapper = job->mapper_factory();
    for (size_t i = 0; i < guard->size(); ++i) {
      mapper->Map(0, guard->view(i), i, &sink);
    }
    benchmark::DoNotOptimize(sink.num_messages());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(guard->size()));
}
BENCHMARK(BM_MsjMapFunction)->Arg(1)->Arg(2)->Arg(3);

void BM_EngineMsjJob(benchmark::State& state) {
  auto w = data::MakeA(1, SmallConfig(static_cast<size_t>(state.range(0))));
  if (!w.ok()) {
    state.SkipWithError("workload");
    return;
  }
  plan::PlannerOptions popts;
  popts.strategy = plan::Strategy::kGreedy;
  cost::ClusterConfig config;
  config.split_mb = 0.05;
  config.mb_per_reducer = 0.05;
  plan::Planner planner(config, popts);
  mr::Engine engine(config);
  for (auto _ : state) {
    Database db = w->db;
    auto plan = planner.Plan(w->query, db);
    if (!plan.ok()) {
      state.SkipWithError("plan");
      return;
    }
    auto result = plan::ExecutePlan(*plan, &engine, &db);
    if (!result.ok()) {
      state.SkipWithError("exec");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineMsjJob)->Arg(10000)->Arg(50000);

void BM_ParseSgf(benchmark::State& state) {
  const std::string text =
      "Z1 := SELECT (x, y) FROM R(x, y) "
      "WHERE (S(x, y) OR S(y, x)) AND T(x, z);\n"
      "Z2 := SELECT x FROM Z1(x, y) WHERE NOT U(y);";
  for (auto _ : state) {
    Dictionary dict;
    auto q = sgf::ParseSgf(text, &dict);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseSgf);

void BM_NaiveEval(benchmark::State& state) {
  auto w = data::MakeA(3, SmallConfig(static_cast<size_t>(state.range(0))));
  if (!w.ok()) {
    state.SkipWithError("workload");
    return;
  }
  for (auto _ : state) {
    auto out = sgf::NaiveEvalSgf(w->query, w->db);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NaiveEval)->Arg(10000)->Arg(100000);

void BM_GreedyGrouping(benchmark::State& state) {
  auto w = data::MakeA3Family(static_cast<int>(state.range(0)),
                              SmallConfig(5000));
  if (!w.ok()) {
    state.SkipWithError("workload");
    return;
  }
  const sgf::BsgfQuery& q = w->query.subqueries()[0];
  std::vector<ops::SemiJoinEquation> eqs;
  for (size_t i = 0; i < q.num_conditional_atoms(); ++i) {
    ops::SemiJoinEquation eq;
    eq.output = "__X" + std::to_string(i);
    eq.guard = q.guard();
    eq.guard_dataset = q.guard().relation();
    eq.conditional = q.conditional_atoms()[i];
    eq.conditional_dataset = q.conditional_atoms()[i].relation();
    eqs.push_back(std::move(eq));
  }
  cost::ClusterConfig config;
  cost::StatsCatalog catalog;
  cost::CostEstimator est(config, cost::CostModelVariant::kGumbo, &w->db,
                          &catalog, 128);
  for (auto _ : state) {
    auto g = plan::GreedyBsgfGrouping(eqs, ops::OpOptions{}, est);
    benchmark::DoNotOptimize(g);
  }
}
BENCHMARK(BM_GreedyGrouping)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace gumbo

BENCHMARK_MAIN();
