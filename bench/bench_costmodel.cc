// Reproduces the §5.2 "Cost Model" experiment:
//
//  (1) the 48-atom constant-filtered query evaluated with GREEDY under
//      cost_gumbo vs cost_wang — the per-partition model avoids grouping
//      decisions that trigger excess map-side merges (the paper reports
//      43% lower total and 71% lower net time for cost_gumbo);
//  (2) pairwise job-ranking accuracy: for random MSJ job pairs, how often
//      does each model rank the more expensive (measured) job higher
//      (paper: 72.28% gumbo vs 69.37% wang).
#include <cstdio>
#include <vector>

#include "bench_harness.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "cost/estimator.h"
#include "mr/engine.h"
#include "ops/msj.h"

using namespace gumbo;
using namespace gumbo::bench;

namespace {

// Random MSJ job candidates: subsets of the semi-join equations of a
// workload's first query.
std::vector<ops::SemiJoinEquation> AllEquations(const data::Workload& w) {
  std::vector<ops::SemiJoinEquation> eqs;
  const sgf::BsgfQuery& q = w.query.subqueries()[0];
  for (size_t i = 0; i < q.num_conditional_atoms(); ++i) {
    ops::SemiJoinEquation eq;
    eq.output = "__X" + std::to_string(i);
    eq.guard = q.guard();
    eq.guard_dataset = q.guard().relation();
    eq.conditional = q.conditional_atoms()[i];
    eq.conditional_dataset = q.conditional_atoms()[i].relation();
    eqs.push_back(std::move(eq));
  }
  return eqs;
}

struct JobSample {
  double measured = 0.0;
  double est_gumbo = 0.0;
  double est_wang = 0.0;
};

}  // namespace

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  std::printf("Cost-model experiment (paper 5.2, 'Cost Model')\n\n");

  // ---- (1) GREEDY under both cost models on the constant-filter query --
  // Run at 400M represented guard tuples: the grouping decision hinges on
  // map-side merge passes, which need enough intermediate volume per
  // mapper to differentiate the models.
  options.represented_tuples = 400e6;
  auto w = data::MakeCostModelQuery(options.MakeGeneratorConfig());
  if (!w.ok()) {
    std::fprintf(stderr, "COSTQ: %s\n", w.status().ToString().c_str());
    return 1;
  }
  CellResult gumbo = RunStrategy(*w, plan::Strategy::kGreedy, options,
                                 cost::CostModelVariant::kGumbo);
  CellResult wang = RunStrategy(*w, plan::Strategy::kGreedy, options,
                                cost::CostModelVariant::kWang);
  std::printf("==== GREEDY on the 48-atom constant-filtered query ====\n");
  TablePrinter tp({"Cost model", "Net time (s)", "Total time (s)"});
  tp.AddRow({"cost_wang", FmtTime(wang, &plan::Metrics::net_time),
             FmtTime(wang, &plan::Metrics::total_time)});
  tp.AddRow({"cost_gumbo", FmtTime(gumbo, &plan::Metrics::net_time),
             FmtTime(gumbo, &plan::Metrics::total_time)});
  std::printf("%s", tp.Render().c_str());
  if (gumbo.ok && wang.ok) {
    std::printf("jobs: gumbo=%d wang=%d\n", gumbo.metrics.jobs,
                wang.metrics.jobs);
  }
  if (gumbo.ok && wang.ok) {
    std::printf(
        "cost_gumbo vs cost_wang: total time %+.0f%%, net time %+.0f%%\n"
        "(paper: -43%% total, -71%% net)\n\n",
        100.0 * (gumbo.metrics.total_time - wang.metrics.total_time) /
            wang.metrics.total_time,
        100.0 * (gumbo.metrics.net_time - wang.metrics.net_time) /
            wang.metrics.net_time);
  }

  // ---- (2) pairwise ranking accuracy --------------------------------------
  std::printf("==== Pairwise job-ranking accuracy ====\n");
  // Candidate jobs: random equation subsets drawn from A1, A2, A3 and the
  // cost-model query (mixing uniform and filtered inputs).
  std::vector<JobSample> samples;
  Xoshiro256 rng(options.seed ^ 0xC057);
  BenchOptions small = options;
  small.tuples = options.tuples / 4 + 100;  // keep measurement affordable
  std::vector<data::Workload> pool;
  for (int qi = 1; qi <= 3; ++qi) {
    auto a = data::MakeA(qi, small.MakeGeneratorConfig());
    if (a.ok()) pool.push_back(std::move(*a));
  }
  {
    auto cq = data::MakeCostModelQuery(small.MakeGeneratorConfig());
    if (cq.ok()) pool.push_back(std::move(*cq));
  }
  mr::Engine engine(small.cluster);
  for (int s = 0; s < 24; ++s) {
    data::Workload& src = pool[rng.Uniform(pool.size())];
    auto eqs = AllEquations(src);
    std::vector<ops::SemiJoinEquation> subset;
    for (const auto& eq : eqs) {
      if (rng.Bernoulli(0.4)) subset.push_back(eq);
    }
    if (subset.empty()) subset.push_back(eqs[rng.Uniform(eqs.size())]);
    auto job = ops::BuildMsjJob(subset, ops::OpOptions{}, "cand");
    if (!job.ok()) continue;
    cost::StatsCatalog catalog;
    cost::CostEstimator eg(small.cluster, cost::CostModelVariant::kGumbo,
                           &src.db, &catalog, 512);
    cost::CostEstimator ew(small.cluster, cost::CostModelVariant::kWang,
                           &src.db, &catalog, 512);
    auto est_g = eg.EstimateJob(*job);
    auto est_w = ew.EstimateJob(*job);
    Database db = src.db;
    auto measured = engine.Run(*job, &db);
    if (!est_g.ok() || !est_w.ok() || !measured.ok()) continue;
    JobSample sample;
    sample.measured = measured->TotalCost();
    sample.est_gumbo = est_g->cost;
    sample.est_wang = est_w->cost;
    samples.push_back(sample);
  }
  int total_pairs = 0, gumbo_correct = 0, wang_correct = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    for (size_t j = i + 1; j < samples.size(); ++j) {
      if (samples[i].measured == samples[j].measured) continue;
      ++total_pairs;
      bool truth = samples[i].measured > samples[j].measured;
      if ((samples[i].est_gumbo > samples[j].est_gumbo) == truth) {
        ++gumbo_correct;
      }
      if ((samples[i].est_wang > samples[j].est_wang) == truth) {
        ++wang_correct;
      }
    }
  }
  if (total_pairs > 0) {
    std::printf(
        "random job pairs: %d\n"
        "cost_gumbo ranks correctly: %.2f%%  (paper: 72.28%%)\n"
        "cost_wang  ranks correctly: %.2f%%  (paper: 69.37%%)\n",
        total_pairs, 100.0 * gumbo_correct / total_pairs,
        100.0 * wang_correct / total_pairs);
  } else {
    std::printf("no comparable job pairs generated\n");
  }
  return 0;
}
