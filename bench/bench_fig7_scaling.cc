// Reproduces Figure 7 (paper §5.4): system characteristics of query A3
// under SEQ / PAR / GREEDY / 1-ROUND while varying
//   (a) data size  (200M .. 1600M represented tuples, 10 nodes),
//   (b) cluster size (5 / 10 / 20 nodes, 800M tuples),
//   (c) data and cluster size together (200M/5 .. 800M/20).
//
// --dist mode (DESIGN.md §13): instead of the cost-model sweep, spawns
// N real worker processes (examples/worker) per workload over an
// MmapTransport mailbox directory, verifies the coordinator's outputs
// byte-identical (words + fingerprints) to an in-process single-runtime
// run, and reports the real wire bytes the shard protocol moved:
//
//   bench_fig7_scaling --dist [--smoke] [--out FILE] [--baseline FILE]
//
// The committed BENCH_dist.json baseline pins dist_wire_mb, which is
// fully deterministic (frame layouts + seeded workloads), so CI gates
// exact-ish equality rather than a timing band.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/str_util.h"
#include "dist/wire.h"
#include "mr/engine.h"

using namespace gumbo;
using namespace gumbo::bench;

#ifndef GUMBO_WORKER_BIN
#define GUMBO_WORKER_BIN ""
#endif

namespace {

void RunSweep(const char* title,
              const std::vector<std::pair<double, int>>& points,
              const BenchOptions& base) {
  const std::vector<std::string> columns = {"SEQ", "PAR", "GREEDY",
                                            "1-ROUND"};
  std::vector<std::string> row_names;
  std::vector<std::vector<CellResult>> rows;
  for (const auto& [mtuples, nodes] : points) {
    BenchOptions options = base;
    options.represented_tuples = mtuples * 1e6;
    options.cluster.nodes = nodes;
    auto w = data::MakeA(3, options.MakeGeneratorConfig());
    if (!w.ok()) {
      std::fprintf(stderr, "A3: %s\n", w.status().ToString().c_str());
      continue;
    }
    std::vector<CellResult> row;
    row.push_back(RunStrategy(*w, plan::Strategy::kSeq, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kPar, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kGreedy, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kOneRound, options));
    row_names.push_back(StrFormat("%.0fM/%d nodes", mtuples, nodes));
    rows.push_back(std::move(row));
    std::printf("  ... %.0fM tuples / %d nodes done\n", mtuples, nodes);
  }
  std::printf("\n");
  PrintMetricBlock(title, columns, rows, row_names);
}

// ---------------------------------------------------------------------------
// --dist: multi-process byte-identity + wire accounting
// ---------------------------------------------------------------------------

std::string WorkerBin() {
  const char* env = std::getenv("GUMBO_WORKER_BIN");
  if (env != nullptr && *env != '\0') return env;
  return GUMBO_WORKER_BIN;
}

// Mirrors examples/worker.cc MakeWorkload exactly: the processes and the
// in-process reference must regenerate the same database.
Result<data::Workload> MakeNamed(const std::string& name, size_t tuples,
                                 uint64_t seed) {
  data::GeneratorConfig g;
  g.tuples = tuples;
  g.seed = seed;
  g.representation_scale = 100e6 / static_cast<double>(tuples);
  if (name == "A1") return data::MakeA(1, g);
  if (name == "A3") return data::MakeA(3, g);
  if (name == "B1") return data::MakeB(1, g);
  return Status::InvalidArgument("unknown workload " + name);
}

struct DistResult {
  std::string key;  // "A3/s4"
  bool ok = false;
  std::string error;
  double dist_wire_mb = 0.0;
  double shuffle_mb = 0.0;
  double net_time = 0.0;
};

bool JsonField(const std::string& json, const std::string& field, size_t from,
               double* out) {
  const std::string needle = "\"" + field + "\": ";
  const size_t at = json.find(needle, from);
  if (at == std::string::npos) return false;
  *out = std::strtod(json.c_str() + at + needle.size(), nullptr);
  return true;
}

DistResult RunDistributed(const std::string& name, int shards, size_t tuples,
                          uint64_t seed) {
  DistResult r;
  r.key = name + "/s" + std::to_string(shards);
  const std::string bin = WorkerBin();
  if (bin.empty()) {
    r.error = "no worker binary (build examples or set GUMBO_WORKER_BIN)";
    return r;
  }

  // In-process reference: same workload, same planner defaults as the
  // worker binary, plain single-process runtime.
  auto w = MakeNamed(name, tuples, seed);
  if (!w.ok()) {
    r.error = w.status().ToString();
    return r;
  }
  cost::ClusterConfig config;
  plan::Planner planner(config, plan::PlannerOptions{});
  auto plan = planner.Plan(w->query, w->db);
  if (!plan.ok()) {
    r.error = "plan: " + plan.status().ToString();
    return r;
  }
  mr::Engine engine(config);
  auto ref = plan::ExecutePlan(*plan, &engine, &w->db);
  if (!ref.ok()) {
    r.error = "reference: " + ref.status().ToString();
    return r;
  }

  char dir_template[] = "/tmp/gumbo_dist_XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    r.error = "mkdtemp failed";
    return r;
  }
  const std::string dir = dir_template;

  std::vector<pid_t> pids;
  for (int s = 0; s < shards; ++s) {
    const std::string a_shard = "--shard=" + std::to_string(s);
    const std::string a_shards = "--shards=" + std::to_string(shards);
    const std::string a_dir = "--dir=" + dir;
    const std::string a_workload = "--workload=" + name;
    const std::string a_tuples = "--tuples=" + std::to_string(tuples);
    const std::string a_seed = "--seed=" + std::to_string(seed);
    const pid_t pid = fork();
    if (pid == 0) {
      const char* argv[] = {bin.c_str(),        a_shard.c_str(),
                            a_shards.c_str(),   a_dir.c_str(),
                            a_workload.c_str(), a_tuples.c_str(),
                            a_seed.c_str(),     nullptr};
      execv(bin.c_str(), const_cast<char* const*>(argv));
      _exit(127);  // exec failed
    }
    if (pid < 0) {
      r.error = "fork failed";
      break;
    }
    pids.push_back(pid);
  }
  bool spawn_ok = r.error.empty();
  for (const pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      if (r.error.empty()) {
        r.error = StrFormat("worker exited with status %d",
                            WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      }
      spawn_ok = false;
    }
  }
  if (!spawn_ok) {
    std::filesystem::remove_all(dir);
    return r;
  }

  // Byte-identity: decode each published output frame and compare the
  // word and fingerprint arenas verbatim against the reference run.
  for (const auto& q : w->query.subqueries()) {
    auto want = w->db.Get(q.output());
    if (!want.ok()) {
      r.error = "reference lost output " + q.output();
      break;
    }
    std::ifstream in(dir + "/out_" + q.output() + ".rel", std::ios::binary);
    if (!in) {
      r.error = "worker 0 published no frame for " + q.output();
      break;
    }
    std::vector<uint8_t> frame((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    auto rd = dist::FrameReader::Parse(frame);
    if (!rd.ok()) {
      r.error = q.output() + ": " + rd.status().ToString();
      break;
    }
    auto got = dist::DecodeRelationBody(&*rd);
    if (!got.ok()) {
      r.error = q.output() + ": " + got.status().ToString();
      break;
    }
    if (got->words() != (*want)->words() ||
        got->fingerprints() != (*want)->fingerprints()) {
      r.error = StrFormat(
          "%s NOT byte-identical at %d shards (%zu vs %zu rows)",
          q.output().c_str(), shards, got->size(), (*want)->size());
      break;
    }
  }

  if (r.error.empty()) {
    std::ifstream in(dir + "/metrics.json");
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    if (!JsonField(json, "dist_wire_mb", 0, &r.dist_wire_mb) ||
        !JsonField(json, "shuffle_mb", 0, &r.shuffle_mb) ||
        !JsonField(json, "net_time", 0, &r.net_time)) {
      r.error = "metrics.json incomplete";
    } else {
      r.ok = true;
    }
  }
  std::filesystem::remove_all(dir);
  return r;
}

bool BaselineWireMb(const std::string& json, const std::string& key,
                    double* out) {
  const size_t at = json.find("\"key\": \"" + key + "\"");
  if (at == std::string::npos) return false;
  return JsonField(json, "dist_wire_mb", at, out);
}

int RunDistMode(bool smoke, const std::string& out_path,
                const std::string& baseline_path) {
  // Pinned sizes (not GUMBO_BENCH_TUPLES): the committed baseline gates
  // dist_wire_mb exactly, so the inputs must be reproducible everywhere.
  const size_t tuples = smoke ? 2000 : 20000;
  const uint64_t seed = 42;
  const std::vector<int> shard_counts = smoke ? std::vector<int>{3}
                                              : std::vector<int>{2, 4};
  const std::vector<std::string> workloads = {"A1", "A3", "B1"};

  std::printf(
      "Multi-process sharded execution (%zu tuples/relation, worker: %s)\n"
      "workload x shards | byte-identity vs single-process | real wire MB\n\n",
      tuples, WorkerBin().c_str());

  int failures = 0;
  std::vector<DistResult> results;
  for (const std::string& name : workloads) {
    for (const int shards : shard_counts) {
      DistResult r = RunDistributed(name, shards, tuples, seed);
      if (!r.ok) {
        std::fprintf(stderr, "FAIL %s: %s\n", r.key.c_str(),
                     r.error.c_str());
        ++failures;
        continue;
      }
      std::printf(
          "%-6s byte-identical | wire %8.3f MB  shuffle %8.3f MB  "
          "net %6.1f s\n",
          r.key.c_str(), r.dist_wire_mb, r.shuffle_mb, r.net_time);
      results.push_back(std::move(r));
    }
  }

  {
    std::ostringstream json;
    json << "{\n  \"bench\": \"dist\",\n  \"tuples\": " << tuples
         << ",\n  \"runs\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const DistResult& r = results[i];
      json << "    {\"key\": \"" << r.key
           << "\", \"dist_wire_mb\": " << StrFormat("%.6f", r.dist_wire_mb)
           << ", \"shuffle_mb\": " << StrFormat("%.6f", r.shuffle_mb)
           << ", \"net_time\": " << StrFormat("%.3f", r.net_time) << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      ++failures;
    } else {
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string json = ss.str();
      // dist_wire_mb is deterministic — the band only absorbs the %.6f
      // serialization of the committed file.
      for (const DistResult& r : results) {
        double base = 0.0;
        if (!BaselineWireMb(json, r.key, &base)) {
          std::fprintf(stderr, "FAIL: baseline has no entry for %s\n",
                       r.key.c_str());
          ++failures;
          continue;
        }
        const double diff = r.dist_wire_mb - base;
        if (diff > 1e-3 * base + 1e-6 || diff < -(1e-3 * base + 1e-6)) {
          std::fprintf(stderr,
                       "FAIL %s: wire %.6f MB != baseline %.6f MB "
                       "(deterministic metric drifted)\n",
                       r.key.c_str(), r.dist_wire_mb, base);
          ++failures;
        } else {
          std::printf("baseline %s: %.6f MB vs %.6f MB committed — ok\n",
                      r.key.c_str(), r.dist_wire_mb, base);
        }
      }
    }
  }

  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool dist = false;
  bool smoke = false;
  std::string out_path = "BENCH_dist.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dist") == 0) {
      dist = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--dist [--smoke] [--out FILE] [--baseline FILE]]\n",
          argv[0]);
      return 2;
    }
  }
  if (dist) return RunDistMode(smoke, out_path, baseline_path);

  BenchOptions base = BenchOptions::FromEnv();
  std::printf("Figure 7: scaling characteristics of query A3\n\n");

  RunSweep("Figure 7a: varying data size (10 nodes)",
           {{200, 10}, {400, 10}, {800, 10}, {1600, 10}}, base);
  RunSweep("Figure 7b: varying cluster size (800M tuples)",
           {{800, 5}, {800, 10}, {800, 20}}, base);
  RunSweep("Figure 7c: varying data and cluster size together",
           {{200, 5}, {400, 10}, {800, 20}}, base);
  return 0;
}
