// Reproduces Figure 7 (paper §5.4): system characteristics of query A3
// under SEQ / PAR / GREEDY / 1-ROUND while varying
//   (a) data size  (200M .. 1600M represented tuples, 10 nodes),
//   (b) cluster size (5 / 10 / 20 nodes, 800M tuples),
//   (c) data and cluster size together (200M/5 .. 800M/20).
#include <cstdio>

#include "bench_harness.h"
#include "common/str_util.h"

using namespace gumbo;
using namespace gumbo::bench;

namespace {

void RunSweep(const char* title,
              const std::vector<std::pair<double, int>>& points,
              const BenchOptions& base) {
  const std::vector<std::string> columns = {"SEQ", "PAR", "GREEDY",
                                            "1-ROUND"};
  std::vector<std::string> row_names;
  std::vector<std::vector<CellResult>> rows;
  for (const auto& [mtuples, nodes] : points) {
    BenchOptions options = base;
    options.represented_tuples = mtuples * 1e6;
    options.cluster.nodes = nodes;
    auto w = data::MakeA(3, options.MakeGeneratorConfig());
    if (!w.ok()) {
      std::fprintf(stderr, "A3: %s\n", w.status().ToString().c_str());
      continue;
    }
    std::vector<CellResult> row;
    row.push_back(RunStrategy(*w, plan::Strategy::kSeq, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kPar, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kGreedy, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kOneRound, options));
    row_names.push_back(StrFormat("%.0fM/%d nodes", mtuples, nodes));
    rows.push_back(std::move(row));
    std::printf("  ... %.0fM tuples / %d nodes done\n", mtuples, nodes);
  }
  std::printf("\n");
  PrintMetricBlock(title, columns, rows, row_names);
}

}  // namespace

int main() {
  BenchOptions base = BenchOptions::FromEnv();
  std::printf("Figure 7: scaling characteristics of query A3\n\n");

  RunSweep("Figure 7a: varying data size (10 nodes)",
           {{200, 10}, {400, 10}, {800, 10}, {1600, 10}}, base);
  RunSweep("Figure 7b: varying cluster size (800M tuples)",
           {{800, 5}, {800, 10}, {800, 20}}, base);
  RunSweep("Figure 7c: varying data and cluster size together",
           {{200, 5}, {400, 10}, {800, 20}}, base);
  return 0;
}
