// Ablation of Gumbo's shuffle-level optimizations on GREEDY plans:
//
//   Block 1 — the paper's §5.1 toggles:
//     (1) message packing on/off,
//     (2) tuple-id references on/off;
//   Block 2 — the shuffle-volume optimizations of DESIGN.md §5:
//     map-side dedup combiners and Bloom-filtered requests on/off,
//     with a per-workload shuffle-volume table (records, messages,
//     combined-away, filtered, communication GB).
//
// Workloads: A1 (guard sharing), A3 (key sharing), B1 (large
// conjunction). The binary doubles as the CI ablation smoke check
// (.github/workflows/ci.yml): it exits non-zero if the fully-optimized
// column shuffles more records/messages/bytes than the unoptimized one,
// so a regression in the combiners or filters fails the build. The
// GUMBO_DISABLE_COMBINERS / GUMBO_DISABLE_FILTERS environment knobs
// (DESIGN.md §5.4) override every column; the invariant degrades to
// equality and still holds.
#include <cstdio>
#include <vector>

#include "bench_harness.h"
#include "common/str_util.h"

using namespace gumbo;
using namespace gumbo::bench;

namespace {

// One ablation block: runs `w` under GREEDY for each OpOptions column.
std::vector<CellResult> RunColumns(const data::Workload& w,
                                   const BenchOptions& options,
                                   const std::vector<ops::OpOptions>& cols) {
  std::vector<CellResult> row;
  for (const ops::OpOptions& op : cols) {
    row.push_back(RunStrategy(w, plan::Strategy::kGreedy, options,
                              cost::CostModelVariant::kGumbo, op));
  }
  return row;
}

void PrintVolumeTable(const std::vector<std::string>& col_names,
                      const std::vector<std::vector<CellResult>>& rows,
                      const std::vector<std::string>& row_names) {
  struct Def {
    const char* name;
    std::string (*fmt)(const plan::Metrics&);
  };
  const Def defs[] = {
      {"Shuffle records",
       [](const plan::Metrics& m) { return std::to_string(m.shuffle_records); }},
      {"Shuffle messages",
       [](const plan::Metrics& m) { return std::to_string(m.shuffle_messages); }},
      {"Combined away",
       [](const plan::Metrics& m) { return std::to_string(m.combined_messages); }},
      {"Filtered out",
       [](const plan::Metrics& m) { return std::to_string(m.filtered_messages); }},
      {"Shuffle (GB)",
       [](const plan::Metrics& m) {
         return StrFormat("%.2f", m.shuffle_mb / 1024.0);
       }},
      {"Communication (GB)",
       [](const plan::Metrics& m) {
         return StrFormat("%.2f", m.communication_mb / 1024.0);
       }},
      {"Filter bcast (MB)",
       [](const plan::Metrics& m) {
         return StrFormat("%.2f", m.filter_broadcast_mb);
       }},
  };
  for (const auto& d : defs) {
    std::vector<std::string> header = {std::string(d.name)};
    for (const auto& c : col_names) header.push_back(c);
    TablePrinter table(header);
    for (size_t r = 0; r < rows.size(); ++r) {
      std::vector<std::string> row = {row_names[r]};
      for (const CellResult& c : rows[r]) {
        row.push_back(c.ok ? d.fmt(c.metrics) : std::string("--"));
      }
      table.AddRow(std::move(row));
    }
    std::printf("%s", table.Render().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  BenchOptions options = BenchOptions::FromEnv();

  std::vector<data::Workload> workloads;
  for (int qi : {1, 3}) {
    auto w = data::MakeA(qi, options.MakeGeneratorConfig());
    if (w.ok()) workloads.push_back(std::move(*w));
  }
  {
    auto w = data::MakeB(1, options.MakeGeneratorConfig());
    if (w.ok()) workloads.push_back(std::move(*w));
  }
  std::vector<std::string> row_names;
  for (const auto& w : workloads) row_names.push_back(w.name);

  // ---- Block 1: message packing x tuple-id references -----------------------
  std::printf("Ablation: message packing x tuple-id references (GREEDY)\n\n");
  const std::vector<std::string> cols1 = {"pack+ids", "pack only", "ids only",
                                          "neither"};
  std::vector<std::vector<CellResult>> rows1;
  for (const auto& w : workloads) {
    std::vector<ops::OpOptions> cols;
    for (auto [pack, ids] : {std::pair{true, true},
                             std::pair{true, false},
                             std::pair{false, true},
                             std::pair{false, false}}) {
      ops::OpOptions op;
      op.pack_messages = pack;
      op.tuple_id_refs = ids;
      cols.push_back(op);
    }
    rows1.push_back(RunColumns(w, options, cols));
    std::printf("  ... %s done\n", w.name.c_str());
  }
  std::printf("\n");
  PrintMetricBlock("Ablation: columns relative to full optimizations", cols1,
                   rows1, row_names);

  // ---- Block 2: combiners x Bloom filters (DESIGN.md §5) --------------------
  std::printf("Ablation: combiners x Bloom filters (GREEDY, pack+ids on)\n\n");
  const std::vector<std::string> cols2 = {"comb+filter", "comb only",
                                          "filter only", "neither"};
  std::vector<std::vector<CellResult>> rows2;
  for (const auto& w : workloads) {
    std::vector<ops::OpOptions> cols;
    for (auto [comb, filt] : {std::pair{true, true},
                              std::pair{true, false},
                              std::pair{false, true},
                              std::pair{false, false}}) {
      ops::OpOptions op;
      op.combiners = comb;
      op.bloom_filters = filt;
      cols.push_back(op);
    }
    rows2.push_back(RunColumns(w, options, cols));
    std::printf("  ... %s done\n", w.name.c_str());
  }
  std::printf("\n");
  PrintMetricBlock("Ablation: columns relative to combiners + filters", cols2,
                   rows2, row_names);
  PrintVolumeTable(cols2, rows2, row_names);

  // ---- Smoke invariant (consumed by CI): the optimized plan never shuffles
  // more than the unoptimized one, and every run must have succeeded.
  int failures = 0;
  for (size_t r = 0; r < rows2.size(); ++r) {
    const CellResult& opt = rows2[r][0];      // comb+filter
    const CellResult& base = rows2[r].back(); // neither
    if (!opt.ok || !base.ok) {
      std::printf("FAIL %s: run error (%s)\n", row_names[r].c_str(),
                  (!opt.ok ? opt.error : base.error).c_str());
      ++failures;
      continue;
    }
    const auto& mo = opt.metrics;
    const auto& mb = base.metrics;
    if (mo.shuffle_records > mb.shuffle_records ||
        mo.shuffle_messages > mb.shuffle_messages ||
        mo.shuffle_mb > mb.shuffle_mb + 1e-9) {
      std::printf(
          "FAIL %s: optimized shuffle exceeds baseline "
          "(records %llu vs %llu, messages %llu vs %llu, shuffle %.2f vs "
          "%.2f MB)\n",
          row_names[r].c_str(),
          static_cast<unsigned long long>(mo.shuffle_records),
          static_cast<unsigned long long>(mb.shuffle_records),
          static_cast<unsigned long long>(mo.shuffle_messages),
          static_cast<unsigned long long>(mb.shuffle_messages),
          mo.shuffle_mb, mb.shuffle_mb);
      ++failures;
      continue;
    }
    double rec_cut = mb.shuffle_messages > 0
                         ? 100.0 * (1.0 - static_cast<double>(
                                              mo.shuffle_messages) /
                                              static_cast<double>(
                                                  mb.shuffle_messages))
                         : 0.0;
    double shf_cut = mb.shuffle_mb > 0.0
                         ? 100.0 * (1.0 - mo.shuffle_mb / mb.shuffle_mb)
                         : 0.0;
    std::printf("OK   %s: shuffle messages -%.1f%%, shuffle bytes -%.1f%%\n",
                row_names[r].c_str(), rec_cut, shf_cut);
  }
  return failures == 0 ? 0 : 1;
}
