// Ablation of Gumbo's §5.1 optimizations on GREEDY plans:
//   (1) message packing on/off,
//   (2) tuple-id references on/off,
// over queries A1 (guard sharing), A3 (key sharing) and B1 (large
// conjunction). These are the design choices DESIGN.md calls out; the
// paper motivates them qualitatively, and this bench quantifies each.
#include <cstdio>

#include "bench_harness.h"

using namespace gumbo;
using namespace gumbo::bench;

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  std::printf("Ablation: message packing x tuple-id references (GREEDY)\n\n");

  const std::vector<std::string> columns = {"pack+ids", "pack only",
                                            "ids only", "neither"};
  std::vector<std::string> row_names;
  std::vector<std::vector<CellResult>> rows;

  auto run_all = [&](const data::Workload& w) {
    std::vector<CellResult> row;
    for (auto [pack, ids] : {std::pair{true, true},
                             std::pair{true, false},
                             std::pair{false, true},
                             std::pair{false, false}}) {
      ops::OpOptions op;
      op.pack_messages = pack;
      op.tuple_id_refs = ids;
      row.push_back(RunStrategy(w, plan::Strategy::kGreedy, options,
                                cost::CostModelVariant::kGumbo, op));
    }
    rows.push_back(std::move(row));
    row_names.push_back(w.name);
    std::printf("  ... %s done\n", w.name.c_str());
  };

  for (int qi : {1, 3}) {
    auto w = data::MakeA(qi, options.MakeGeneratorConfig());
    if (w.ok()) run_all(*w);
  }
  {
    auto w = data::MakeB(1, options.MakeGeneratorConfig());
    if (w.ok()) run_all(*w);
  }
  std::printf("\n");
  PrintMetricBlock("Ablation: columns relative to full optimizations",
                   columns, rows, row_names);
  return 0;
}
