// Wall-clock microbenchmark of the flat arena-backed relation storage
// (DESIGN.md §7): zero-copy TupleView scans with stored fingerprints and
// flat-word SortAndDedupe vs. the pre-flat representation (rows of
// owning Tuples, per-scan Hash(), sort of 48-byte Tuple objects),
// transcribed in-file as the legacy baseline. A third, informational
// section times one real MSJ round end-to-end on the flat engine and
// pins 1-thread vs 8-thread byte identity (the equivalence discipline).
//
// Unlike the fig/table benches this measures REAL time, not the modeled
// clock: the storage refactor cannot change any modeled byte (the tests
// pin result equivalence), so the only thing at stake is rows per
// wall-second.
//
// Usage:
//   bench_storage [--smoke] [--out FILE] [--baseline FILE]
//
//   --smoke      fewer repetitions and a relaxed sanity bar (CI); input
//                size still comes from GUMBO_BENCH_TUPLES so the run
//                stays comparable to a committed baseline
//   --out        write machine-readable results (default BENCH_storage.json)
//   --baseline   compare against a committed BENCH_storage.json: exit
//                non-zero if the flat/legacy speedup regresses more than
//                20% (30% under --smoke) against the baseline's speedup
//                (ratios, not absolute rates, so the check is stable
//                across machines). Generate the baseline at the same
//                GUMBO_BENCH_TUPLES as the gate run.
//
// The binary always self-checks: legacy and flat dedupe must produce the
// identical canonical row sequence, the flat scan checksum must match the
// legacy scan checksum, and the combined scan+dedupe throughput must beat
// the legacy representation by >= 1.5x at full size (the PR's acceptance
// bar; the smoke bar is lower because tiny inputs keep the legacy rows
// cache-resident).
//
// Environment: GUMBO_BENCH_TUPLES / GUMBO_BENCH_SEED as usual.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_harness.h"
#include "common/str_util.h"
#include "common/scheduler.h"
#include "data/generator.h"
#include "mr/engine.h"
#include "ops/msj.h"

using namespace gumbo;
using namespace gumbo::bench;

namespace {

// ---- Legacy representation (transcribed pre-refactor row store) -------------

// The pre-flat Relation: a vector of owning Tuples. Scans touch Tuple
// objects (48 B each) and re-hash per scan — the old pipeline computed
// Tuple::Hash() per emission for grouping/Bloom probes; the flat store
// reads the fingerprint computed at load.
struct LegacyRelation {
  std::vector<Tuple> tuples;

  void SortAndDedupe() {
    std::sort(tuples.begin(), tuples.end());
    tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  }
};

LegacyRelation ToLegacy(const Relation& rel) {
  LegacyRelation out;
  out.tuples = rel.ToTuples();
  return out;
}

// ---- Scan kernels -----------------------------------------------------------
//
// The scan models what a map task does per row: look at every value (the
// Conforms walk + projection reads) and obtain the row's 64-bit
// fingerprint for EmitPrehashed. Both sides fold the same figures into a
// checksum so the compiler cannot elide the work and the representations
// self-check against each other.

uint64_t ScanLegacy(const LegacyRelation& rel) {
  uint64_t sum = 0;
  for (const Tuple& t : rel.tuples) {
    uint64_t row = 0;
    for (uint32_t i = 0; i < t.size(); ++i) row ^= t[i].raw();
    sum = FingerprintMix(sum, row ^ t.Hash());  // hashed per scan
  }
  return sum;
}

uint64_t ScanFlat(const Relation& rel) {
  uint64_t sum = 0;
  for (RowView t : rel.views()) {
    uint64_t row = 0;
    const uint64_t* w = t.words();
    for (uint32_t i = 0; i < t.size(); ++i) row ^= w[i];
    sum = FingerprintMix(sum, row ^ t.fingerprint());  // stored at load
  }
  return sum;
}

// ---- Timing -----------------------------------------------------------------

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double SecondsOfBestRep(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const double t0 = Now();
    fn();
    best = std::min(best, Now() - t0);
  }
  return best;
}

struct SectionResult {
  std::string name;
  size_t rows = 0;
  double legacy_scan_rps = 0.0;
  double flat_scan_rps = 0.0;
  double legacy_dedupe_rps = 0.0;
  double flat_dedupe_rps = 0.0;
  double speedup = 0.0;  // combined scan+dedupe throughput ratio
};

// Minimal extraction for the flat JSON this binary writes: finds
// `"name": "<w>"` and returns the next `"speedup": <num>` after it.
bool BaselineSpeedup(const std::string& json, const std::string& name,
                     double* out) {
  const std::string needle = "\"name\": \"" + name + "\"";
  size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const std::string key = "\"speedup\":";
  at = json.find(key, at);
  if (at == std::string::npos) return false;
  *out = std::strtod(json.c_str() + at + key.size(), nullptr);
  return true;
}

// Builds a relation with a realistic duplicate fraction: the generator's
// rows plus a 50% replay of earlier rows (reduce outputs before the
// canonicalizing dedupe look like this).
Relation MakeDupRelation(const data::Generator& gen, const std::string& name,
                         uint32_t arity, size_t tuples) {
  Relation base = gen.Guard(name, arity);
  Relation rel(name, arity);
  rel.Reserve(tuples + tuples / 2);
  for (size_t i = 0; i < base.size(); ++i) rel.AddView(base.view(i));
  for (size_t i = 0; i < base.size() / 2; ++i) {
    rel.AddView(base.view((i * 2) % base.size()));
  }
  return rel;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_storage.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out FILE] [--baseline FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  BenchOptions options = BenchOptions::FromEnv();
  const int reps = smoke ? 3 : 5;
  data::GeneratorConfig gcfg = options.MakeGeneratorConfig();
  data::Generator gen(gcfg);

  std::printf(
      "Flat relation storage: arena words + stored fingerprints vs. legacy "
      "row-of-Tuple store\n(%zu tuples/relation + 50%% duplicates, %d reps, "
      "best-of)\n\n",
      options.tuples, reps);

  int failures = 0;
  std::vector<SectionResult> results;
  struct Shape {
    const char* name;
    uint32_t arity;
  };
  for (const Shape& shape : {Shape{"g4", 4}, Shape{"c1", 1}}) {
    Relation flat = MakeDupRelation(gen, shape.name, shape.arity,
                                    options.tuples);
    LegacyRelation legacy = ToLegacy(flat);
    const size_t rows = flat.size();

    // Scan: checksum self-check, then best-of timing.
    const uint64_t flat_sum = ScanFlat(flat);
    const uint64_t legacy_sum = ScanLegacy(legacy);
    if (flat_sum != legacy_sum) {
      std::fprintf(stderr, "FAIL %s: scan checksums disagree\n", shape.name);
      ++failures;
      continue;
    }
    uint64_t sink = 0;
    const double legacy_scan_s =
        SecondsOfBestRep(reps, [&] { sink ^= ScanLegacy(legacy); });
    const double flat_scan_s =
        SecondsOfBestRep(reps, [&] { sink ^= ScanFlat(flat); });
    if (sink == 0x5eedbeef) std::printf("(unlikely)\n");  // keep `sink` live

    // Dedupe: fresh copies are made OUTSIDE the timed region (dedupe
    // mutates); the result sequences must be byte-identical.
    Relation flat_check = flat;
    flat_check.SortAndDedupe();
    LegacyRelation legacy_check = legacy;
    legacy_check.SortAndDedupe();
    bool same = flat_check.size() == legacy_check.tuples.size();
    for (size_t i = 0; same && i < flat_check.size(); ++i) {
      same = flat_check.TupleAt(i) == legacy_check.tuples[i];
    }
    if (!same) {
      std::fprintf(stderr,
                   "FAIL %s: dedupe results diverge (%zu vs %zu rows)\n",
                   shape.name, flat_check.size(), legacy_check.tuples.size());
      ++failures;
      continue;
    }
    std::vector<LegacyRelation> legacy_copies(reps, legacy);
    const double legacy_dedupe_s = SecondsOfBestRep(reps, [&, r = 0]() mutable {
      legacy_copies[r++].SortAndDedupe();
    });
    std::vector<Relation> flat_copies(reps, flat);
    const double flat_dedupe_s = SecondsOfBestRep(reps, [&, r = 0]() mutable {
      flat_copies[r++].SortAndDedupe();
    });
    // Parallel flat dedupe (informational; the gate stays sequential so
    // shared CI runners do not flake it).
    Scheduler sched(8);
    std::vector<Relation> par_copies(reps, flat);
    const double par_dedupe_s = SecondsOfBestRep(reps, [&, r = 0]() mutable {
      par_copies[r++].SortAndDedupe(&sched);
    });
    if (!(par_copies[0].words() == flat_copies[0].words())) {
      std::fprintf(stderr, "FAIL %s: parallel dedupe diverges\n", shape.name);
      ++failures;
      continue;
    }

    SectionResult r;
    r.name = shape.name;
    r.rows = rows;
    r.legacy_scan_rps = static_cast<double>(rows) / legacy_scan_s;
    r.flat_scan_rps = static_cast<double>(rows) / flat_scan_s;
    r.legacy_dedupe_rps = static_cast<double>(rows) / legacy_dedupe_s;
    r.flat_dedupe_rps = static_cast<double>(rows) / flat_dedupe_s;
    // Combined scan+dedupe throughput: rows over the summed critical path.
    r.speedup = (legacy_scan_s + legacy_dedupe_s) /
                (flat_scan_s + flat_dedupe_s);
    results.push_back(r);

    std::printf(
        "%-3s %9zu rows | scan legacy %10.0f r/s flat %10.0f r/s (%.2fx) | "
        "dedupe legacy %9.0f r/s flat %9.0f r/s (%.2fx, par %.2fx) | "
        "combined %.2fx\n",
        r.name.c_str(), rows, r.legacy_scan_rps, r.flat_scan_rps,
        r.flat_scan_rps / r.legacy_scan_rps, r.legacy_dedupe_rps,
        r.flat_dedupe_rps, r.flat_dedupe_rps / r.legacy_dedupe_rps,
        legacy_dedupe_s / par_dedupe_s, r.speedup);

    // The 1.5x acceptance bar applies at realistic input sizes (the 100k
    // default); smoke inputs stay cache-resident for the legacy rows, so
    // smoke only sanity-checks a clear win and relies on the committed-
    // baseline ratio gate below.
    const double bar = smoke ? 1.2 : 1.5;
    if (r.speedup < bar) {
      std::fprintf(stderr, "FAIL %s: combined speedup %.2fx below %.1fx\n",
                   r.name.c_str(), r.speedup, bar);
      ++failures;
    }
  }

  // ---- End-to-end round (informational timing + a HARD thread-identity
  // self-check: setup failures count as failures, never a silent skip) ----
  {
    const double t0 = Now();
    double round_s = -1.0;
    auto w = data::MakeA(3, gcfg);
    if (!w.ok()) {
      std::fprintf(stderr, "FAIL e2e: workload setup: %s\n",
                   w.status().ToString().c_str());
      ++failures;
    } else {
      const sgf::BsgfQuery& q = w->query.subqueries()[0];
      std::vector<ops::SemiJoinEquation> eqs;
      for (size_t i = 0; i < q.num_conditional_atoms(); ++i) {
        ops::SemiJoinEquation eq;
        eq.output = "__X" + std::to_string(i);
        eq.guard = q.guard();
        eq.guard_dataset = q.guard().relation();
        eq.conditional = q.conditional_atoms()[i];
        eq.conditional_dataset = q.conditional_atoms()[i].relation();
        eqs.push_back(std::move(eq));
      }
      auto job = ops::BuildMsjJob(eqs, ops::OpOptions{}, "storage-e2e");
      if (!job.ok()) {
        std::fprintf(stderr, "FAIL e2e: job build: %s\n",
                     job.status().ToString().c_str());
        ++failures;
      } else {
        mr::Engine warm(options.cluster);
        auto warm_run = warm.RunDetached(*job, w->db);  // warm caches
        const double r0 = Now();
        auto run = warm.RunDetached(*job, w->db);
        round_s = Now() - r0;
        Scheduler sched1(1);
        mr::Engine e1(options.cluster, &sched1);
        auto run1 = e1.RunDetached(*job, w->db);
        if (!warm_run.ok() || !run.ok() || !run1.ok()) {
          std::fprintf(stderr, "FAIL e2e: round execution failed\n");
          ++failures;
        } else {
          for (size_t oi = 0; oi < run->outputs.size(); ++oi) {
            if (!(run->outputs[oi].words() == run1->outputs[oi].words())) {
              std::fprintf(stderr,
                           "FAIL e2e: 1-thread vs pooled outputs differ\n");
              ++failures;
              break;
            }
          }
        }
      }
    }
    std::printf("\ne2e MSJ round (A3, flat engine): %.1f ms wall "
                "(setup+check %.1f ms)\n",
                1e3 * round_s, 1e3 * (Now() - t0));
  }

  // Machine-readable results.
  {
    std::ostringstream json;
    json << "{\n  \"bench\": \"storage\",\n  \"tuples\": " << options.tuples
         << ",\n  \"workloads\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const SectionResult& r = results[i];
      json << "    {\"name\": \"" << r.name << "\", \"rows\": " << r.rows
           << ", \"legacy_scan_rows_per_sec\": "
           << StrFormat("%.0f", r.legacy_scan_rps)
           << ", \"flat_scan_rows_per_sec\": "
           << StrFormat("%.0f", r.flat_scan_rps)
           << ", \"legacy_dedupe_rows_per_sec\": "
           << StrFormat("%.0f", r.legacy_dedupe_rps)
           << ", \"flat_dedupe_rows_per_sec\": "
           << StrFormat("%.0f", r.flat_dedupe_rps)
           << ", \"speedup\": " << StrFormat("%.3f", r.speedup) << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    std::printf("wrote %s\n", out_path.c_str());
  }

  // Regression gate against a committed baseline: compare the speedup
  // ratio (machine-independent), not absolute rates.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      ++failures;
    } else {
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string json = ss.str();
      const double tolerance = smoke ? 0.7 : 0.8;
      for (const SectionResult& r : results) {
        double base = 0.0;
        if (!BaselineSpeedup(json, r.name, &base)) {
          std::fprintf(stderr, "FAIL: baseline has no entry for %s\n",
                       r.name.c_str());
          ++failures;
          continue;
        }
        if (r.speedup < tolerance * base) {
          std::fprintf(stderr,
                       "FAIL %s: speedup %.2fx regressed >%.0f%% vs baseline "
                       "%.2fx\n",
                       r.name.c_str(), r.speedup, 100.0 * (1.0 - tolerance),
                       base);
          ++failures;
        } else {
          std::printf("baseline %s: %.2fx vs %.2fx committed — ok\n",
                      r.name.c_str(), r.speedup, base);
        }
      }
    }
  }

  return failures == 0 ? 0 : 1;
}
