// Shared harness for the paper-reproduction benchmarks (bench_fig*.cc,
// bench_table*.cc): workload sizing, strategy execution, and table
// formatting. Each bench binary regenerates one table/figure of the
// paper's §5 as console output (see EXPERIMENTS.md for the mapping).
//
// Environment knobs:
//   GUMBO_BENCH_TUPLES     — materialized tuples per relation (default 100000)
//   GUMBO_BENCH_SEED       — generator seed (default 42)
//   GUMBO_BENCH_SEQUENTIAL — 1: run jobs of a round one-by-one instead of
//                            concurrently (A/B against the round runtime)
//
// Relations always *represent* the paper's sizes (100M tuples, 4 GB
// guards) through the representation scale, so reported bytes and
// cost-model times are paper-scale regardless of the materialized sample.
#ifndef GUMBO_BENCH_BENCH_HARNESS_H_
#define GUMBO_BENCH_BENCH_HARNESS_H_

#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "common/table_printer.h"
#include "cost/constants.h"
#include "data/workloads.h"
#include "mr/runtime.h"
#include "plan/executor.h"
#include "plan/planner.h"

namespace gumbo::bench {

struct BenchOptions {
  size_t tuples = 100000;
  uint64_t seed = 42;
  double selectivity = 0.5;
  /// Tuples each relation represents (the paper's 100M by default).
  double represented_tuples = 100e6;
  cost::ClusterConfig cluster;  // paper testbed defaults
  /// Round-runtime behavior (GUMBO_BENCH_SEQUENTIAL=1 disables in-round
  /// job concurrency for A/B wall-clock comparisons).
  mr::RuntimeOptions runtime;

  data::GeneratorConfig MakeGeneratorConfig() const {
    data::GeneratorConfig g;
    g.tuples = tuples;
    g.seed = seed;
    g.selectivity = selectivity;
    g.representation_scale =
        represented_tuples / static_cast<double>(tuples);
    return g;
  }

  /// Reads GUMBO_BENCH_* environment overrides.
  static BenchOptions FromEnv();
};

struct CellResult {
  bool ok = false;
  std::string error;
  plan::Metrics metrics;
};

/// Plans + executes `w.query` under a gumbo strategy.
CellResult RunStrategy(const data::Workload& w, plan::Strategy strategy,
                       const BenchOptions& options,
                       cost::CostModelVariant variant =
                           cost::CostModelVariant::kGumbo,
                       ops::OpOptions op = ops::OpOptions{});

/// Plans + executes `w.query` under a Pig/Hive baseline.
CellResult RunBaseline(const data::Workload& w, baselines::BaselineKind kind,
                       const BenchOptions& options);

/// "123" (seconds, rounded) for times; "--" on failure.
std::string FmtTime(const CellResult& r, double plan::Metrics::*field);
/// "12.3" GB from MB metrics.
std::string FmtGb(const CellResult& r, double plan::Metrics::*field);
/// "57%" relative to a base cell.
std::string FmtRel(const CellResult& r, const CellResult& base,
                   double plan::Metrics::*field);

/// Prints the standard four-metric block (net / total / input / comm),
/// absolute and relative to the first column.
void PrintMetricBlock(const std::string& title,
                      const std::vector<std::string>& col_names,
                      const std::vector<std::vector<CellResult>>& rows,
                      const std::vector<std::string>& row_names);

}  // namespace gumbo::bench

#endif  // GUMBO_BENCH_BENCH_HARNESS_H_
