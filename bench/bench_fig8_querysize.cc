// Reproduces Figure 8 (paper §5.4): varying the number of conditional
// atoms (2..16) in an A3-shaped query under SEQ / PAR / GREEDY / 1-ROUND.
#include <cstdio>

#include "bench_harness.h"
#include "common/str_util.h"

using namespace gumbo;
using namespace gumbo::bench;

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  std::printf(
      "Figure 8: varying the number of conditional atoms (A3 family)\n\n");

  const std::vector<std::string> columns = {"SEQ", "PAR", "GREEDY",
                                            "1-ROUND"};
  std::vector<std::string> row_names;
  std::vector<std::vector<CellResult>> rows;
  for (int k : {2, 4, 6, 8, 10, 12, 14, 16}) {
    auto w = data::MakeA3Family(k, options.MakeGeneratorConfig());
    if (!w.ok()) {
      std::fprintf(stderr, "A3(%d): %s\n", k, w.status().ToString().c_str());
      return 1;
    }
    std::vector<CellResult> row;
    row.push_back(RunStrategy(*w, plan::Strategy::kSeq, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kPar, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kGreedy, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kOneRound, options));
    row_names.push_back(StrFormat("%d atoms", k));
    rows.push_back(std::move(row));
    std::printf("  ... %d atoms done\n", k);
  }
  std::printf("\n");
  PrintMetricBlock("Figure 8: query size sweep", columns, rows, row_names);
  return 0;
}
