// Wall-clock benchmark of the concurrent query service (DESIGN.md §8):
// closed- and open-loop drivers over the mixed A1 + A3 + B1 workload
// (Table 2 queries sharing one generated database), comparing admission
// modes:
//
//   serialized       max_inflight=1, plan cache off — the pre-serve
//                    behavior: one synchronous plan + execute per query,
//                    re-planning and re-sampling every time;
//   serialized+cache max_inflight=1, plan cache on (cache effect alone);
//   concurrent       max_inflight=8, plan cache off (admission overlap
//                    alone);
//   concurrent+cache max_inflight=8, plan cache on — the full service.
//
// The headline speedup is concurrent+cache vs serialized (throughput of
// the service vs the pre-serve path). Every response in every mode is
// checked byte-identical (words + fingerprints) against a solo reference
// run — the determinism bar of DESIGN.md §8 — so a scheduling or cache
// bug fails the bench before any number is reported.
//
// A write-heavy scenario (DESIGN.md §12) then mixes ~10% AddFact traffic
// into the same read mix and compares closed-loop throughput with the
// incremental delta-evaluation layer on vs off; the delta-on run must
// clear 2x, every timed response byte-identity-checked against a
// per-phase reference.
//
// Usage:
//   bench_serve [--smoke] [--out FILE] [--baseline FILE]
//
//   --smoke      relaxed speedup bar + regression tolerance (CI). The
//                run shape (clients, queries per client) is identical to
//                a full run — a smaller smoke run would carry a higher
//                cold-miss fraction and eat the tolerance with
//                systematic bias rather than noise.
//   --out        machine-readable results (default BENCH_serve.json)
//   --baseline   compare against a committed BENCH_serve.json: exit
//                non-zero if the speedup regresses more than 20% (30%
//                under --smoke) vs the baseline (ratios, not absolute
//                qps, so the gate is stable across machines). Generate
//                the baseline at the same GUMBO_BENCH_TUPLES.
//
// Environment: GUMBO_BENCH_TUPLES (default 5000 here — a serving-shaped
// size where per-query latency is tens of ms; the fig/table benches'
// 100000 default is an analytics size) and GUMBO_BENCH_SEED as usual.
//
// Two gates guard the morsel scheduler (DESIGN.md §9): the cache-off
// concurrency speedup (concurrent / serialized, both without the plan
// cache) must clear 1.5x (1.2x under --smoke), and concurrent-no-cache
// p95 must stay within 1.5x of serialized p95. Even on a single
// hardware thread concurrency pays — concurrent identical in-flight
// queries coalesce onto one single-flight planning — while multi-core
// machines add genuine morsel overlap on top. The committed baseline
// records the speedup on the reference machine; CI gates on the ratio
// against it.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_harness.h"
#include "common/config.h"
#include "common/str_util.h"
#include "serve/service.h"

using namespace gumbo;
using namespace gumbo::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(std::max(
      0.0, std::ceil(p * static_cast<double>(samples.size())) - 1.0));
  return samples[std::min(rank, samples.size() - 1)];
}

struct ModeResult {
  std::string name;
  size_t inflight = 0;
  bool cache = false;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t cache_hits = 0;
  bool identical = true;  // every response matched the solo reference
};

// Byte-identity check of one response against the solo reference outputs
// — same relation set, same words, same fingerprints.
bool Identical(const serve::QueryResponse& resp, const Database& ref) {
  if (resp.outputs.size() != ref.size()) return false;
  for (const auto& [name, rel] : ref.relations()) {
    const auto got = resp.outputs.Get(name);
    if (!got.ok()) return false;
    if (!(got.value()->words() == rel.words())) return false;
    if (!(got.value()->fingerprints() == rel.fingerprints())) return false;
  }
  return true;
}

// Closed loop: `clients` threads each issue `per_client` queries
// back-to-back (blocking on each response), cycling through the query
// mix with a per-client offset so distinct classes overlap in flight.
ModeResult RunClosedLoop(const std::string& name, const Database& db,
                         const std::vector<sgf::SgfQuery>& queries,
                         const std::vector<Database>& refs,
                         const serve::ServiceOptions& opts, size_t clients,
                         size_t per_client) {
  ModeResult r;
  r.name = name;
  r.inflight = opts.max_inflight;
  r.cache = opts.plan_cache;

  serve::QueryService service(&db, opts);
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<bool> ok{true};
  const double t0 = Now();
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t k = 0; k < per_client; ++k) {
        const size_t pick = (c + k) % queries.size();
        serve::QueryResponse resp = service.Run(queries[pick]);
        if (!resp.ok() || !Identical(resp, refs[pick])) {
          ok.store(false);
          return;
        }
        latencies[c].push_back(resp.wall_ms);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = Now() - t0;

  r.identical = ok.load();
  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  r.qps = static_cast<double>(all.size()) / wall_s;
  r.p50_ms = PercentileMs(all, 0.50);
  r.p95_ms = PercentileMs(all, 0.95);
  r.p99_ms = PercentileMs(all, 0.99);
  r.cache_hits = service.Stats().cache.hits;
  return r;
}

// Open loop: one dispatcher submits at a fixed arrival rate (no waiting
// for responses), then all completions are collected. Shows queueing
// latency under an offered load the closed loop never generates.
ModeResult RunOpenLoop(const Database& db,
                       const std::vector<sgf::SgfQuery>& queries,
                       const std::vector<Database>& refs,
                       const serve::ServiceOptions& opts, size_t total,
                       double offered_qps) {
  ModeResult r;
  r.name = "open-loop";
  r.inflight = opts.max_inflight;
  r.cache = opts.plan_cache;

  serve::QueryService service(&db, opts);
  std::vector<std::future<serve::QueryResponse>> futures;
  futures.reserve(total);
  const double interval_s = offered_qps > 0.0 ? 1.0 / offered_qps : 0.0;
  const double t0 = Now();
  for (size_t k = 0; k < total; ++k) {
    const double target = t0 + static_cast<double>(k) * interval_s;
    while (Now() < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    futures.push_back(service.Submit(queries[k % queries.size()]));
  }
  std::vector<double> all;
  bool ok = true;
  for (size_t k = 0; k < futures.size(); ++k) {
    serve::QueryResponse resp = futures[k].get();
    ok = ok && resp.ok() && Identical(resp, refs[k % refs.size()]);
    all.push_back(resp.wall_ms);
  }
  const double wall_s = Now() - t0;
  r.identical = ok;
  r.qps = static_cast<double>(total) / wall_s;
  r.p50_ms = PercentileMs(all, 0.50);
  r.p95_ms = PercentileMs(all, 0.95);
  r.p99_ms = PercentileMs(all, 0.99);
  r.cache_hits = service.Stats().cache.hits;
  return r;
}

// Minimal extraction for the flat JSON this binary writes. The quoted
// key + colon form is exact: "speedup" never matches "speedup_write".
bool BaselineDouble(const std::string& json, const std::string& name,
                    double* out) {
  const std::string key = "\"" + name + "\":";
  const size_t at = json.find(key);
  if (at == std::string::npos) return false;
  *out = std::strtod(json.c_str() + at + key.size(), nullptr);
  return true;
}

// ---- Write-heavy scenario (DESIGN.md §12) ----------------------------------
//
// ~10% AddFact traffic interleaved with the A1+A3+B1 read mix, phase
// structured: each phase applies a deterministic write batch through the
// service's write API, then the clients issue a closed-loop read burst.
// Between phases the driver recomputes solo reference outputs for the
// mutated database (off the clock), so EVERY timed response is still
// byte-identity-checked. Run twice — delta layer on vs off — the ratio
// is the number the incremental-evaluation layer is accountable for:
// with it off, every post-write read re-plans and re-executes from
// scratch; with it on, the first read per query delta-maintains the
// cached result and the rest are pure result-cache hits.

// The deterministic write stream both scenario runs (and the reference
// precomputation) replay: guard-position facts with values inside the
// generated domain, so inserts actually join and change outputs.
Tuple WriteFact(uint32_t arity, size_t phase, size_t w, size_t domain) {
  Tuple t;
  for (uint32_t a = 0; a < arity; ++a) {
    t.PushBack(Value::Int(static_cast<int64_t>(
        (phase * 131 + w * 17 + a * 7 + 3) % (domain > 0 ? domain : 1))));
  }
  return t;
}

struct WriteHeavyResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t delta_hits = 0;
  uint64_t result_hits = 0;
  size_t reads = 0;
  size_t writes = 0;
  bool identical = true;
};

WriteHeavyResult RunWriteHeavy(
    const Database& base, const std::vector<sgf::SgfQuery>& queries,
    const std::vector<std::vector<Database>>& phase_refs,
    const serve::ServiceOptions& opts, size_t clients,
    size_t reads_per_client_per_phase, size_t writes_per_phase,
    size_t domain, bool delta_on) {
  WriteHeavyResult r;
  Database wdb = base;  // private mutable copy; `base` stays pristine
  const uint32_t guard_arity = wdb.Get("R").value()->arity();
  serve::ServiceOptions o = opts;
  o.result_cache = delta_on;
  serve::QueryService service(&wdb, o);

  // Warm the caches off the clock: the scenario measures steady-state
  // serving under writes, not the cold first plan.
  for (const sgf::SgfQuery& q : queries) {
    if (!service.Run(q).ok()) {
      r.identical = false;
      return r;
    }
  }

  std::vector<double> lat;
  std::mutex lat_mu;
  std::atomic<bool> ok{true};
  double busy_s = 0.0;
  for (size_t phase = 0; phase < phase_refs.size(); ++phase) {
    // Write section (timed — writes are part of the offered traffic).
    double t0 = Now();
    for (size_t w = 0; w < writes_per_phase; ++w) {
      if (!service.AddFact("R", WriteFact(guard_arity, phase, w, domain))
               .ok()) {
        r.identical = false;
        return r;
      }
      ++r.writes;
    }
    busy_s += Now() - t0;
    // Read burst (timed): every response checked against the reference
    // for THIS phase's database state.
    const std::vector<Database>& refs = phase_refs[phase];
    t0 = Now();
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t k = 0; k < reads_per_client_per_phase; ++k) {
          const size_t pick = (c + k) % queries.size();
          serve::QueryResponse resp = service.Run(queries[pick]);
          if (!resp.ok() || !Identical(resp, refs[pick])) {
            ok.store(false);
            return;
          }
          std::lock_guard<std::mutex> lock(lat_mu);
          lat.push_back(resp.wall_ms);
        }
      });
    }
    for (auto& t : threads) t.join();
    busy_s += Now() - t0;
    r.reads += clients * reads_per_client_per_phase;
    if (!ok.load()) break;
  }
  r.identical = ok.load();
  r.qps = busy_s > 0.0
              ? static_cast<double>(r.reads + r.writes) / busy_s
              : 0.0;
  r.p50_ms = PercentileMs(lat, 0.50);
  r.p95_ms = PercentileMs(lat, 0.95);
  r.p99_ms = PercentileMs(lat, 0.99);
  const serve::ServiceStats stats = service.Stats();
  r.delta_hits = stats.delta_hits;
  r.result_hits = stats.result_hits;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out FILE] [--baseline FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  BenchOptions options = BenchOptions::FromEnv();
  if (!common::RuntimeConfig::Get().bench_tuples.has_value()) {
    options.tuples = 5000;  // serving-shaped default (see header comment)
  }
  const size_t kClients = 8;
  const size_t per_client = 12;  // same shape with/without --smoke

  // ---- Shared database + query mix (A1, A3, B1 read the same relations)
  data::GeneratorConfig gcfg = options.MakeGeneratorConfig();
  std::vector<sgf::SgfQuery> queries;
  std::vector<std::string> names;
  Database db;
  {
    auto a1 = data::MakeA(1, gcfg);
    auto a3 = data::MakeA(3, gcfg);
    auto b1 = data::MakeB(1, gcfg);
    if (!a1.ok() || !a3.ok() || !b1.ok()) {
      std::fprintf(stderr, "FAIL: workload setup\n");
      return 1;
    }
    db = std::move(a1->db);  // identical relation set across the three
    for (auto* w : {&*a1, &*a3, &*b1}) {
      queries.push_back(w->query);
      names.push_back(w->name);
    }
  }

  std::printf(
      "Concurrent query service: mixed %s workload, %zu tuples/relation,\n"
      "%zu clients x %zu queries, closed loop (best numbers below are the\n"
      "full service; 'serialized' is the pre-serve synchronous path)\n\n",
      "A1+A3+B1", options.tuples, kClients, per_client);

  // ---- Solo references for the byte-identity bar ----
  cost::ClusterConfig cluster = options.cluster;
  plan::Planner planner(cluster, plan::PlannerOptions{});
  mr::Engine engine(cluster);
  std::vector<Database> refs;
  for (const sgf::SgfQuery& q : queries) {
    Database copy = db;
    auto plan = planner.Plan(q, copy);
    if (!plan.ok()) {
      std::fprintf(stderr, "FAIL: solo plan: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    auto run = plan::ExecutePlan(*plan, &engine, &copy);
    if (!run.ok()) {
      std::fprintf(stderr, "FAIL: solo run: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    Database outputs;
    for (const auto& sub : q.subqueries()) {
      outputs.Put(*copy.Get(sub.output()).value());
    }
    refs.push_back(std::move(outputs));
  }

  // ---- Closed-loop admission-mode matrix ----
  auto mode_opts = [&](size_t inflight, bool cache) {
    serve::ServiceOptions o;
    o.max_inflight = inflight;
    o.plan_cache = cache;
    // The admission matrix isolates plan-cache and concurrency effects;
    // with the result cache on, repeat submissions short-circuit to pure
    // hits and every mode collapses to cache lookup speed. The
    // write-heavy scenario below measures the delta/result-cache layer
    // on its own terms (RunWriteHeavy overrides this per run).
    o.result_cache = false;
    o.cluster = cluster;
    o.runtime = options.runtime;
    return o;
  };
  int failures = 0;
  std::vector<ModeResult> modes;
  modes.push_back(RunClosedLoop("serialized", db, queries, refs,
                                mode_opts(1, false), kClients, per_client));
  modes.push_back(RunClosedLoop("serialized+cache", db, queries, refs,
                                mode_opts(1, true), kClients, per_client));
  modes.push_back(RunClosedLoop("concurrent", db, queries, refs,
                                mode_opts(kClients, false), kClients,
                                per_client));
  modes.push_back(RunClosedLoop("concurrent+cache", db, queries, refs,
                                mode_opts(kClients, true), kClients,
                                per_client));
  for (const ModeResult& m : modes) {
    std::printf(
        "%-17s inflight=%zu cache=%d | %7.1f q/s | p50 %7.1f ms  p95 %7.1f "
        "ms  p99 %7.1f ms | %4llu cache hits%s\n",
        m.name.c_str(), m.inflight, m.cache ? 1 : 0, m.qps, m.p50_ms,
        m.p95_ms, m.p99_ms, static_cast<unsigned long long>(m.cache_hits),
        m.identical ? "" : "  RESULTS DIVERGED");
    if (!m.identical) {
      std::fprintf(stderr,
                   "FAIL %s: a response diverged from the solo reference\n",
                   m.name.c_str());
      ++failures;
    }
  }

  const double speedup = modes[3].qps / modes[0].qps;
  const double speedup_cache = modes[1].qps / modes[0].qps;
  // Concurrency measured with the cache OFF on both sides: admission
  // overlap plus single-flight planning of identical in-flight keys,
  // with no cache effect mixed in. This is the number the morsel
  // scheduler is accountable for (DESIGN.md §9).
  const double speedup_conc = modes[2].qps / modes[0].qps;
  std::printf(
      "\nspeedup (full service vs serialized): %.2fx\n"
      "  plan cache alone %.2fx | concurrency alone (cache off) %.2fx\n",
      speedup, speedup_cache, speedup_conc);

  // ---- Open loop at 70%% of the service's closed-loop throughput ----
  ModeResult open = RunOpenLoop(db, queries, refs, mode_opts(kClients, true),
                                kClients * per_client, 0.7 * modes[3].qps);
  std::printf(
      "open loop @ %.1f q/s offered: %7.1f q/s | p50 %7.1f ms  p95 %7.1f ms"
      "  p99 %7.1f ms\n",
      0.7 * modes[3].qps, open.qps, open.p50_ms, open.p95_ms, open.p99_ms);
  if (!open.identical) {
    std::fprintf(stderr, "FAIL open-loop: a response diverged\n");
    ++failures;
  }

  // ---- Overload: deadline-aware shedding (DESIGN.md §11) ----
  // A saturating kLow flood against a constrained service, with a kHigh
  // foreground whose queries carry deadlines derived from the unloaded
  // p95. The service must shed the flood (synchronous ResourceExhausted
  // at the watermark) instead of queueing it, and the foreground
  // queries it admits must stay inside their deadline budget — overload
  // degrades by rejecting work, never by stretching admitted latencies.
  ModeResult unloaded = RunClosedLoop("unloaded", db, queries, refs,
                                      mode_opts(kClients, true), 1,
                                      per_client);
  const double base_p95 = std::max(unloaded.p95_ms, 5.0);
  const double deadline_ms = 1.8 * base_p95;
  serve::ServiceOptions oopts = mode_opts(4, true);
  oopts.max_queued = 16;
  oopts.shed_watermark = 8;

  size_t fg_ok = 0, fg_deadline = 0, fg_other = 0;
  size_t flood_ok = 0, flood_shed = 0, flood_other = 0;
  std::vector<double> fg_lat;
  std::vector<double> shed_submit;
  bool overload_identical = true;
  {
    serve::QueryService service(&db, oopts);
    std::mutex mu;
    std::vector<std::thread> threads;
    // Foreground: 2 closed-loop clients, kHigh + per-query deadline.
    for (size_t c = 0; c < 2; ++c) {
      threads.emplace_back([&, c] {
        for (size_t k = 0; k < per_client; ++k) {
          const size_t pick = (c + k) % queries.size();
          serve::QueryOptions qo;
          qo.deadline_ms = deadline_ms;
          qo.priority = SchedPriority::kHigh;
          serve::QueryResponse resp = service.Run(queries[pick], qo);
          std::lock_guard<std::mutex> lock(mu);
          if (resp.ok()) {
            ++fg_ok;
            fg_lat.push_back(resp.wall_ms);
            if (!Identical(resp, refs[pick])) overload_identical = false;
          } else if (resp.status.code() == StatusCode::kDeadlineExceeded) {
            ++fg_deadline;
          } else {
            ++fg_other;
          }
        }
      });
    }
    // Flood: 4 open-loop clients submitting kLow background queries as
    // fast as Submit returns (shed responses resolve synchronously, so
    // a shed submission never throttles the flood).
    for (size_t c = 0; c < 4; ++c) {
      threads.emplace_back([&, c] {
        std::vector<std::future<serve::QueryResponse>> futures;
        std::vector<double> submit_ms;
        for (size_t k = 0; k < per_client; ++k) {
          serve::QueryOptions qo;
          qo.priority = SchedPriority::kLow;
          const double t = Now();
          futures.push_back(
              service.Submit(queries[(c + k) % queries.size()], qo));
          submit_ms.push_back((Now() - t) * 1e3);
        }
        for (size_t k = 0; k < futures.size(); ++k) {
          serve::QueryResponse resp = futures[k].get();
          std::lock_guard<std::mutex> lock(mu);
          if (resp.ok()) {
            ++flood_ok;
            if (!Identical(resp, refs[(c + k) % refs.size()])) {
              overload_identical = false;
            }
          } else if (resp.status.code() == StatusCode::kResourceExhausted) {
            ++flood_shed;
            shed_submit.push_back(submit_ms[k]);
          } else {
            ++flood_other;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const double admitted_p95 = PercentileMs(fg_lat, 0.95);
  const double shed_submit_p95 = PercentileMs(shed_submit, 0.95);
  std::printf(
      "overload (kLow flood, fg deadline %.1f ms): fg %zu ok / %zu deadline"
      " | flood %zu ok / %zu shed | admitted p95 %.1f ms (unloaded %.1f ms)"
      " | shed submit p95 %.2f ms\n",
      deadline_ms, fg_ok, fg_deadline, flood_ok, flood_shed, admitted_p95,
      unloaded.p95_ms, shed_submit_p95);
  if (!overload_identical) {
    std::fprintf(stderr, "FAIL overload: a response diverged\n");
    ++failures;
  }
  if (fg_other != 0 || flood_other != 0) {
    std::fprintf(stderr,
                 "FAIL overload: %zu foreground / %zu flood responses with "
                 "unexpected statuses\n",
                 fg_other, flood_other);
    ++failures;
  }
  if (flood_shed == 0) {
    std::fprintf(stderr,
                 "FAIL overload: the saturating kLow flood was never shed\n");
    ++failures;
  }
  if (fg_ok == 0) {
    std::fprintf(stderr,
                 "FAIL overload: no foreground query survived the flood\n");
    ++failures;
  }
  // The deadline bound is structural: a query past its budget fails with
  // DeadlineExceeded at the next morsel boundary instead of completing
  // late, so admitted latencies can exceed the 1.8x-p95 deadline only by
  // one morsel's drain — 2x unloaded p95 leaves room for exactly that.
  if (admitted_p95 > 2.0 * base_p95) {
    std::fprintf(stderr,
                 "FAIL overload: admitted p95 %.1f ms exceeds 2x unloaded "
                 "p95 %.1f ms\n",
                 admitted_p95, base_p95);
    ++failures;
  }
  // Shed responses resolve synchronously inside Submit — a shed caller
  // must never be held as long as a real query would have taken.
  if (shed_submit_p95 > base_p95) {
    std::fprintf(stderr,
                 "FAIL overload: shed submissions took p95 %.2f ms — not "
                 "prompt vs unloaded p95 %.1f ms\n",
                 shed_submit_p95, base_p95);
    ++failures;
  }

  // ---- Write-heavy scenario: delta layer on vs off (DESIGN.md §12) ----
  const size_t kPhases = 6;
  const size_t kWritesPerPhase = 2;
  const size_t kReadsPerClientPerPhase = 2;  // 16 reads + 2 writes -> ~11%
  // Precompute per-phase solo references once: both scenario runs replay
  // the identical deterministic write stream, so the truth per phase is
  // shared. References run the classic plan + execute path off the clock.
  std::vector<std::vector<Database>> phase_refs(kPhases);
  {
    Database evolving = db;
    const uint32_t guard_arity = evolving.Get("R").value()->arity();
    for (size_t phase = 0; phase < kPhases; ++phase) {
      for (size_t w = 0; w < kWritesPerPhase; ++w) {
        if (!evolving
                 .AddFact("R", WriteFact(guard_arity, phase, w,
                                         options.tuples))
                 .ok()) {
          std::fprintf(stderr, "FAIL: write-heavy reference setup\n");
          return 1;
        }
      }
      for (const sgf::SgfQuery& q : queries) {
        Database copy = evolving;
        auto plan = planner.Plan(q, copy);
        auto run = plan.ok() ? plan::ExecutePlan(*plan, &engine, &copy)
                             : Result<plan::ExecutionResult>(plan.status());
        if (!run.ok()) {
          std::fprintf(stderr, "FAIL: write-heavy reference run: %s\n",
                       run.status().ToString().c_str());
          return 1;
        }
        Database outputs;
        for (const auto& sub : q.subqueries()) {
          outputs.Put(*copy.Get(sub.output()).value());
        }
        phase_refs[phase].push_back(std::move(outputs));
      }
    }
  }
  const WriteHeavyResult delta_on = RunWriteHeavy(
      db, queries, phase_refs, mode_opts(kClients, true), kClients,
      kReadsPerClientPerPhase, kWritesPerPhase, options.tuples, true);
  const WriteHeavyResult delta_off = RunWriteHeavy(
      db, queries, phase_refs, mode_opts(kClients, true), kClients,
      kReadsPerClientPerPhase, kWritesPerPhase, options.tuples, false);
  const double speedup_write =
      delta_off.qps > 0.0 ? delta_on.qps / delta_off.qps : 0.0;
  std::printf(
      "write-heavy (%zu reads + %zu writes, %zu phases):\n"
      "  delta-on  %7.1f q/s | p50 %6.1f ms p95 %6.1f ms | %llu delta "
      "passes, %llu result hits%s\n"
      "  delta-off %7.1f q/s | p50 %6.1f ms p95 %6.1f ms%s\n"
      "  delta speedup: %.2fx\n",
      delta_on.reads, delta_on.writes, kPhases, delta_on.qps, delta_on.p50_ms,
      delta_on.p95_ms, static_cast<unsigned long long>(delta_on.delta_hits),
      static_cast<unsigned long long>(delta_on.result_hits),
      delta_on.identical ? "" : "  RESULTS DIVERGED", delta_off.qps,
      delta_off.p50_ms, delta_off.p95_ms,
      delta_off.identical ? "" : "  RESULTS DIVERGED", speedup_write);
  if (!delta_on.identical || !delta_off.identical) {
    std::fprintf(stderr,
                 "FAIL write-heavy: a response diverged from the phase "
                 "reference\n");
    ++failures;
  }
  if (delta_on.delta_hits == 0) {
    std::fprintf(stderr,
                 "FAIL write-heavy: the delta-on run never delta-maintained "
                 "a result\n");
    ++failures;
  }
  // The §12 acceptance bar — and it holds under --smoke too: the delta
  // layer's advantage (delta-sized maintenance + pure hits vs full
  // re-execution after every write batch) is structural, not a
  // machine-speed artifact.
  if (speedup_write < 2.0) {
    std::fprintf(stderr,
                 "FAIL: write-heavy delta speedup %.2fx below the 2.0x bar\n",
                 speedup_write);
    ++failures;
  }

  // The acceptance bar: the full service must at least double the
  // serialized pre-serve throughput at the default size. The smoke bar
  // is lower only to absorb noisy shared CI runners — the run shape is
  // identical, and the committed-baseline ratio gate below carries the
  // fine-grained regression check.
  const double bar = smoke ? 1.5 : 2.0;
  if (speedup < bar) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the %.1fx bar\n", speedup,
                 bar);
    ++failures;
  }

  // Morsel-scheduler acceptance (DESIGN.md §9): concurrency must pay on
  // its own, with the plan cache off on both sides. Before the
  // scheduler this ratio was 0.92x (concurrent admission *lost*
  // throughput); morsel-granular interleaving plus cache-off
  // single-flight planning must put it decisively above 1.
  const double conc_bar = smoke ? 1.2 : 1.5;
  if (speedup_conc < conc_bar) {
    std::fprintf(stderr,
                 "FAIL: cache-off concurrency speedup %.2fx below the %.1fx "
                 "bar\n",
                 speedup_conc, conc_bar);
    ++failures;
  }
  // And concurrency must not buy throughput by wrecking tail latency:
  // a query admitted among 8 in flight may wait at most 1.5x the p95 of
  // the serialized queue (where it waits behind up to 7 whole queries).
  if (modes[2].p95_ms > 1.5 * modes[0].p95_ms) {
    std::fprintf(stderr,
                 "FAIL: concurrent p95 %.1f ms exceeds 1.5x serialized p95 "
                 "%.1f ms\n",
                 modes[2].p95_ms, modes[0].p95_ms);
    ++failures;
  }

  // Snapshot the committed baseline BEFORE writing out_path: the CI
  // invocation passes the same file for both (--baseline BENCH_serve.json
  // from the repo root), and reading it after the write would compare the
  // run against its own freshly written numbers — a vacuous gate.
  std::string base_json;
  bool have_baseline = false;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      base_json = ss.str();
      have_baseline = true;
    }
  }

  // ---- Machine-readable results ----
  {
    std::ostringstream json;
    json << "{\n  \"bench\": \"serve\",\n  \"tuples\": " << options.tuples
         << ",\n  \"clients\": " << kClients
         << ",\n  \"queries_per_client\": " << per_client
         << ",\n  \"workload\": \"" << names[0] << "+" << names[1] << "+"
         << names[2] << "\",\n  \"modes\": [\n";
    for (size_t i = 0; i < modes.size(); ++i) {
      const ModeResult& m = modes[i];
      json << "    {\"name\": \"" << m.name << "\", \"inflight\": "
           << m.inflight << ", \"cache\": " << (m.cache ? 1 : 0)
           << ", \"qps\": " << StrFormat("%.2f", m.qps)
           << ", \"p50_ms\": " << StrFormat("%.2f", m.p50_ms)
           << ", \"p95_ms\": " << StrFormat("%.2f", m.p95_ms)
           << ", \"p99_ms\": " << StrFormat("%.2f", m.p99_ms) << "}"
           << (i + 1 < modes.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"speedup\": " << StrFormat("%.3f", speedup)
         << ",\n  \"speedup_cache\": " << StrFormat("%.3f", speedup_cache)
         << ",\n  \"speedup_concurrency\": "
         << StrFormat("%.3f", speedup_conc)
         << ",\n  \"open_loop\": {\"offered_qps\": "
         << StrFormat("%.2f", 0.7 * modes[3].qps)
         << ", \"qps\": " << StrFormat("%.2f", open.qps)
         << ", \"p50_ms\": " << StrFormat("%.2f", open.p50_ms)
         << ", \"p95_ms\": " << StrFormat("%.2f", open.p95_ms)
         << ", \"p99_ms\": " << StrFormat("%.2f", open.p99_ms)
         << "},\n  \"overload\": {\"unloaded_p95_ms\": "
         << StrFormat("%.2f", unloaded.p95_ms)
         << ", \"deadline_ms\": " << StrFormat("%.2f", deadline_ms)
         << ", \"admitted_p95_ms\": " << StrFormat("%.2f", admitted_p95)
         << ", \"fg_ok\": " << fg_ok << ", \"fg_deadline\": " << fg_deadline
         << ", \"flood_ok\": " << flood_ok << ", \"shed\": " << flood_shed
         << ", \"shed_submit_p95_ms\": "
         << StrFormat("%.2f", shed_submit_p95)
         << "},\n  \"write_heavy\": {\"reads\": " << delta_on.reads
         << ", \"writes\": " << delta_on.writes
         << ", \"qps_delta_on\": " << StrFormat("%.2f", delta_on.qps)
         << ", \"qps_delta_off\": " << StrFormat("%.2f", delta_off.qps)
         << ", \"p95_delta_on_ms\": " << StrFormat("%.2f", delta_on.p95_ms)
         << ", \"p95_delta_off_ms\": " << StrFormat("%.2f", delta_off.p95_ms)
         << ", \"delta_hits\": " << delta_on.delta_hits
         << ", \"result_hits\": " << delta_on.result_hits
         << ", \"speedup_write\": " << StrFormat("%.3f", speedup_write)
         << "}\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  // ---- Regression gate vs a committed baseline (ratio, not qps) ----
  if (!baseline_path.empty()) {
    if (!have_baseline) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      ++failures;
    } else {
      double base = 0.0;
      if (!BaselineDouble(base_json, "speedup", &base)) {
        std::fprintf(stderr, "FAIL: baseline has no speedup entry\n");
        ++failures;
      } else {
        const double tolerance = smoke ? 0.7 : 0.8;
        if (speedup < tolerance * base) {
          std::fprintf(stderr,
                       "FAIL: speedup %.2fx regressed >%.0f%% vs baseline "
                       "%.2fx\n",
                       speedup, 100.0 * (1.0 - tolerance), base);
          ++failures;
        } else {
          std::printf("baseline: %.2fx vs %.2fx committed — ok\n", speedup,
                      base);
        }
      }
      // Same ratio gate for the write-heavy delta speedup (absent from
      // pre-§12 baselines — the absolute 2.0x bar above still applies).
      double base_write = 0.0;
      if (BaselineDouble(base_json, "speedup_write", &base_write)) {
        const double tolerance = smoke ? 0.7 : 0.8;
        if (speedup_write < tolerance * base_write) {
          std::fprintf(stderr,
                       "FAIL: write-heavy speedup %.2fx regressed >%.0f%% vs "
                       "baseline %.2fx\n",
                       speedup_write, 100.0 * (1.0 - tolerance), base_write);
          ++failures;
        } else {
          std::printf("baseline write-heavy: %.2fx vs %.2fx committed — ok\n",
                      speedup_write, base_write);
        }
      }
    }
  }

  return failures == 0 ? 0 : 1;
}
