// Standalone differential soak driver (DESIGN.md §10): random SGF
// queries over random skewed/correlated databases through every planner
// strategy and both serve paths, each result checked byte-identical
// against the naive reference evaluator. Exits nonzero on any
// divergence, printing a minimized reproduction (seed + query).
//
// Environment knobs:
//   GUMBO_SOAK_SEED    — base seed (default 7); iteration i uses seed+i
//   GUMBO_SOAK_ITERS   — (query, database) pairs to run (default 200)
//   GUMBO_SOAK_TUPLES  — materialized tuples per relation (default 240)
#include <cstdio>

#include "soak/soak.h"

int main() {
  gumbo::soak::SoakConfig config = gumbo::soak::SoakConfig::FromEnv();
  std::printf("gumbo differential soak: seed=%llu iters=%zu tuples=%zu\n",
              static_cast<unsigned long long>(config.seed),
              config.iterations, config.tuples);
  const gumbo::soak::SoakReport report = gumbo::soak::RunSoak(config);
  std::printf("%s\n", report.Summary().c_str());
  if (!report.ok()) return 1;
  if (report.checks == 0) {
    std::printf("soak ran zero checks — configuration error\n");
    return 1;
  }
  return 0;
}
