// Standalone differential soak driver (DESIGN.md §10): random SGF
// queries over random skewed/correlated databases through every planner
// strategy and both serve paths, each result checked byte-identical
// against the naive reference evaluator. Exits nonzero on any
// divergence, printing a minimized reproduction (seed + query).
//
// Environment knobs:
//   GUMBO_SOAK_SEED    — base seed (default 7); iteration i uses seed+i
//   GUMBO_SOAK_ITERS   — (query, database) pairs to run (default 200)
//   GUMBO_SOAK_TUPLES  — materialized tuples per relation (default 240)
//   GUMBO_FAULT_RATE   — chaos mode: per-(site, unit, attempt) fault
//                        probability (default 0 = off); OK results must
//                        stay byte-identical, failures must be typed
//                        clean errors (DESIGN.md §11)
//   GUMBO_FAULT_SEED   — chaos base seed (default 42)
//   GUMBO_FAULT_SITES  — comma-separated site filter (default all)
#include <cstdio>

#include "soak/soak.h"

int main() {
  gumbo::soak::SoakConfig config = gumbo::soak::SoakConfig::FromEnv();
  std::printf("gumbo differential soak: seed=%llu iters=%zu tuples=%zu\n",
              static_cast<unsigned long long>(config.seed),
              config.iterations, config.tuples);
  if (config.chaos()) {
    std::printf("chaos mode: fault_rate=%g fault_seed=%llu sites=0x%x\n",
                config.fault_rate,
                static_cast<unsigned long long>(config.fault_seed),
                config.fault_sites);
  }
  const gumbo::soak::SoakReport report = gumbo::soak::RunSoak(config);
  std::printf("%s\n", report.Summary().c_str());
  if (!report.ok()) return 1;
  if (report.checks == 0) {
    std::printf("soak ran zero checks — configuration error\n");
    return 1;
  }
  if (config.chaos() && report.faults_injected == 0) {
    std::printf("chaos mode injected zero faults — configuration error\n");
    return 1;
  }
  return 0;
}
