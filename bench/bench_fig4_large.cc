// Reproduces Figure 4 (paper §5.2): the large BSGF queries B1 (16-atom
// conjunction) and B2 (uniqueness query) under all strategies.
#include <cstdio>

#include "bench_harness.h"

using namespace gumbo;
using namespace gumbo::bench;

int main() {
  BenchOptions options = BenchOptions::FromEnv();
  std::printf(
      "Figure 4: large BSGF queries B1-B2 across evaluation strategies\n"
      "(materialized %zu tuples/relation)\n\n",
      options.tuples);

  const std::vector<std::string> columns = {"SEQ",  "PAR",   "GREEDY",
                                            "HPAR", "HPARS", "PPAR",
                                            "1-ROUND"};
  std::vector<std::string> row_names;
  std::vector<std::vector<CellResult>> rows;

  for (int qi = 1; qi <= 2; ++qi) {
    auto w = data::MakeB(qi, options.MakeGeneratorConfig());
    if (!w.ok()) {
      std::fprintf(stderr, "B%d: %s\n", qi, w.status().ToString().c_str());
      return 1;
    }
    std::vector<CellResult> row;
    row.push_back(RunStrategy(*w, plan::Strategy::kSeq, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kPar, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kGreedy, options));
    row.push_back(RunBaseline(*w, baselines::BaselineKind::kHivePar, options));
    row.push_back(
        RunBaseline(*w, baselines::BaselineKind::kHiveParSemiJoin, options));
    row.push_back(RunBaseline(*w, baselines::BaselineKind::kPigPar, options));
    row.push_back(RunStrategy(*w, plan::Strategy::kOneRound, options));
    row_names.push_back(w->name);
    rows.push_back(std::move(row));
    std::printf("  ... %s done\n", w->name.c_str());
  }
  std::printf("\n");
  PrintMetricBlock("Figure 4: B1-B2 (1-ROUND applies to B2 only)", columns,
                   rows, row_names);
  return 0;
}
