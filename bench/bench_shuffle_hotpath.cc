// Wall-clock microbenchmark of the shuffle hot path (DESIGN.md §3):
// flat-buffer representation (MapOutputBuffer + fingerprint grouping +
// sort-once partitions) vs. the pre-flat representation (per-emission
// Tuple/Message pairs, unordered_map grouping, per-call partition
// copy + sort), replaying identical MSJ emission streams recorded from
// the A1 / A3 / B1 ablation workloads.
//
// Unlike the fig/table benches this measures REAL time, not the modeled
// clock: the cost model's byte accounting is identical for both
// representations by construction (the tests pin it), so the only thing
// at stake here is records per wall-second.
//
// Usage:
//   bench_shuffle_hotpath [--smoke] [--out FILE] [--baseline FILE]
//
//   --smoke      fewer repetitions and a relaxed sanity bar (CI); input
//                size still comes from GUMBO_BENCH_TUPLES so the run
//                stays comparable to a committed baseline
//   --out        write machine-readable results (default BENCH_shuffle.json
//                in the current directory)
//   --baseline   compare against a committed BENCH_shuffle.json: exit
//                non-zero if the flat/legacy speedup regresses more than
//                20% against the baseline's speedup (ratios, not absolute
//                rates, so the check is stable across machines). Generate
//                the baseline at the same GUMBO_BENCH_TUPLES as the gate
//                run — the speedup legitimately shrinks at sizes where
//                the legacy hash map stays cache-resident, so mixed-size
//                comparisons encode contradictory expectations.
//
// The binary always self-checks: both paths must produce identical
// reduce-side checksums, and the flat path must be >= 2x the legacy
// records/sec on every workload (the PR's acceptance bar).
//
// Environment: GUMBO_BENCH_TUPLES / GUMBO_BENCH_SEED as usual.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_harness.h"
#include "common/config.h"
#include "common/str_util.h"
#include "data/workloads.h"
#include "mr/map_output.h"
#include "mr/shuffle.h"
#include "ops/msj.h"

using namespace gumbo;
using namespace gumbo::bench;

namespace {

constexpr int kReducePartitions = 8;

// ---- Recorded emission stream ----------------------------------------------

struct Emission {
  Tuple key;
  /// key.Hash(), recorded once — the operators all compute it anyway
  /// (Bloom probes) and hand it to EmitPrehashed, so the flat replay
  /// does the same; the legacy representation had no slot to carry it
  /// and re-hashed in grouping and partitioning.
  uint64_t fingerprint = 0;
  uint32_t tag = 0;
  uint32_t aux = 0;
  Tuple payload;
  double wire_bytes = 0.0;
};

// One map task's recorded emissions.
using TaskStream = std::vector<Emission>;

// Builds the MSJ job of a workload's first subquery (every equation in
// one job, as GREEDY would group A1/A3/B1) with packing on and the
// volume optimizations off, so both representations shuffle the exact
// same logical stream.
Result<mr::JobSpec> BuildJob(const data::Workload& w) {
  const sgf::BsgfQuery& q = w.query.subqueries()[0];
  std::vector<ops::SemiJoinEquation> eqs;
  for (size_t i = 0; i < q.num_conditional_atoms(); ++i) {
    ops::SemiJoinEquation eq;
    eq.output = "__X" + std::to_string(i);
    eq.guard = q.guard();
    eq.guard_dataset = q.guard().relation();
    eq.conditional = q.conditional_atoms()[i];
    eq.conditional_dataset = q.conditional_atoms()[i].relation();
    eqs.push_back(std::move(eq));
  }
  ops::OpOptions op;
  op.combiners = false;
  op.bloom_filters = false;
  return ops::BuildMsjJob(eqs, op, "shuffle-hotpath-" + w.name);
}

// Runs the job's mappers over the workload relations, split into
// `tasks_per_input` map tasks per input, and records the raw emission
// streams via MapOutputBuffer::ForEachEmission.
Result<std::vector<TaskStream>> RecordStreams(const data::Workload& w,
                                              const mr::JobSpec& job,
                                              size_t tasks_per_input) {
  std::vector<TaskStream> streams;
  for (size_t ii = 0; ii < job.inputs.size(); ++ii) {
    GUMBO_ASSIGN_OR_RETURN(const Relation* rel,
                           w.db.Get(job.inputs[ii].dataset));
    const size_t n = rel->size();
    for (size_t t = 0; t < tasks_per_input; ++t) {
      const size_t begin = n * t / tasks_per_input;
      const size_t end = n * (t + 1) / tasks_per_input;
      auto mapper = job.mapper_factory();
      mr::MapOutputBuffer buffer;
      for (size_t j = begin; j < end; ++j) {
        mapper->Map(ii, rel->view(j), static_cast<uint64_t>(j), &buffer);
      }
      TaskStream stream;
      stream.reserve(buffer.num_messages());
      buffer.ForEachEmission([&](const uint64_t* key_words, uint32_t arity,
                                 uint64_t fingerprint, const mr::Message& m,
                                 const uint64_t* arena) {
        Emission e;
        e.key = Tuple::DecodeFrom(key_words, arity);
        e.fingerprint = fingerprint;
        e.tag = m.tag;
        e.aux = m.aux;
        e.payload = Tuple::DecodeFrom(m.payload_words(arena), m.payload_size);
        e.wire_bytes = m.wire_bytes;
        stream.push_back(std::move(e));
      });
      streams.push_back(std::move(stream));
    }
  }
  return streams;
}

// ---- Reduce-side consumer shared by both paths ------------------------------

struct Checksum {
  uint64_t hash = 0;
  size_t groups = 0;
  size_t messages = 0;

  void Key(TupleView key) {
    hash = FingerprintMix(hash, key.Fingerprint());
    ++groups;
  }
  // `payload_hash` is Tuple::Hash() of the payload; the flat path
  // computes it straight off the payload words (TupleFingerprint is the
  // same function), the legacy path off the materialized Tuple.
  void Value(uint32_t tag, uint32_t aux, uint64_t payload_hash) {
    hash = FingerprintMix(hash, (static_cast<uint64_t>(tag) << 32) ^ aux);
    hash = FingerprintMix(hash, payload_hash);
    ++messages;
  }
  bool operator==(const Checksum& o) const {
    return hash == o.hash && groups == o.groups && messages == o.messages;
  }
};

// ---- Legacy representation (pre-flat shuffle, for comparison) ---------------
// A faithful transcription of the previous data path: every emission
// materializes a (Tuple key, Message{..., Tuple payload}) pair; ingest
// groups through unordered_map<Tuple, ...>; Partition hashes every key
// again; ForEachGroup copies + re-sorts the partition and re-merges
// multi-record keys into a scratch vector.

namespace legacy {

struct Message {
  uint32_t tag = 0;
  uint32_t aux = 0;
  Tuple payload;
  double wire_bytes = 0.0;
};

struct KeyValue {
  Tuple key;
  Message value;
};

struct ShuffleRecord {
  Tuple key;
  std::vector<Message> values;
  double wire_bytes = 0.0;
};

class Shuffle {
 public:
  explicit Shuffle(size_t num_map_tasks) : task_records_(num_map_tasks) {}

  size_t AddTaskOutput(size_t task, std::vector<KeyValue> kvs) {
    std::vector<ShuffleRecord>& records = task_records_[task];
    std::unordered_map<Tuple, size_t> index;
    index.reserve(kvs.size());
    for (KeyValue& kv : kvs) {
      auto [it, inserted] = index.emplace(kv.key, records.size());
      if (inserted) {
        ShuffleRecord rec;
        rec.key = std::move(kv.key);
        records.push_back(std::move(rec));
      }
      records[it->second].values.push_back(std::move(kv.value));
    }
    for (ShuffleRecord& rec : records) {
      rec.wire_bytes = mr::TupleWireBytes(rec.key);
      for (const Message& m : rec.values) rec.wire_bytes += m.wire_bytes;
    }
    return records.size();
  }

  void Partition(int num_partitions) {
    partitions_.resize(static_cast<size_t>(num_partitions));
    for (const auto& records : task_records_) {
      for (const ShuffleRecord& rec : records) {
        partitions_[rec.key.Hash() % static_cast<uint64_t>(num_partitions)]
            .push_back(&rec);
      }
    }
  }

  template <class Fn>
  void ForEachGroup(size_t p, Fn fn) const {
    std::vector<const ShuffleRecord*> sorted = partitions_[p];
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ShuffleRecord* a, const ShuffleRecord* b) {
                       return a->key < b->key;
                     });
    std::vector<Message> merged;
    for (size_t i = 0; i < sorted.size();) {
      size_t j = i + 1;
      while (j < sorted.size() && sorted[j]->key == sorted[i]->key) ++j;
      if (j == i + 1) {
        fn(sorted[i]->key, sorted[i]->values);
      } else {
        merged.clear();
        for (size_t k = i; k < j; ++k) {
          merged.insert(merged.end(), sorted[k]->values.begin(),
                        sorted[k]->values.end());
        }
        fn(sorted[i]->key, merged);
      }
      i = j;
    }
  }

  size_t num_partitions() const { return partitions_.size(); }

 private:
  std::vector<std::vector<ShuffleRecord>> task_records_;
  std::vector<std::vector<const ShuffleRecord*>> partitions_;
};

}  // namespace legacy

// Phase timings of one pass (seconds), for GUMBO_BENCH_PHASES=1 output.
struct Phases {
  double ingest = 0.0;
  double partition = 0.0;
  double reduce = 0.0;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One full legacy pass: materialize KeyValues, ingest, partition, reduce.
size_t RunLegacy(const std::vector<TaskStream>& streams, Checksum* sum,
                 Phases* phases = nullptr) {
  double t0 = Now();
  legacy::Shuffle shuffle(streams.size());
  size_t records = 0;
  for (size_t t = 0; t < streams.size(); ++t) {
    std::vector<legacy::KeyValue> kvs;
    kvs.reserve(streams[t].size());
    for (const Emission& e : streams[t]) {
      legacy::KeyValue kv;
      kv.key = e.key;
      kv.value.tag = e.tag;
      kv.value.aux = e.aux;
      kv.value.payload = e.payload;
      kv.value.wire_bytes = e.wire_bytes;
      kvs.push_back(std::move(kv));
    }
    records += shuffle.AddTaskOutput(t, std::move(kvs));
  }
  double t1 = Now();
  shuffle.Partition(kReducePartitions);
  double t2 = Now();
  for (size_t p = 0; p < shuffle.num_partitions(); ++p) {
    shuffle.ForEachGroup(
        p, [&](const Tuple& key, const std::vector<legacy::Message>& values) {
          sum->Key(key);
          for (const legacy::Message& m : values) {
            sum->Value(m.tag, m.aux, m.payload.Hash());
          }
        });
  }
  if (phases != nullptr) {
    double t3 = Now();
    phases->ingest += t1 - t0;
    phases->partition += t2 - t1;
    phases->reduce += t3 - t2;
  }
  return records;
}

// One full flat pass: emit into MapOutputBuffers, ingest, partition,
// reduce through the MessageGroup view.
size_t RunFlat(const std::vector<TaskStream>& streams, Checksum* sum,
               Phases* phases = nullptr) {
  double t0 = Now();
  mr::Shuffle shuffle(streams.size(), /*pack_messages=*/true);
  size_t records = 0;
  for (size_t t = 0; t < streams.size(); ++t) {
    mr::MapOutputBuffer buffer;
    for (const Emission& e : streams[t]) {
      if (e.payload.empty()) {
        buffer.EmitPrehashed(e.key, e.fingerprint, e.tag, e.aux,
                             e.wire_bytes);
      } else {
        buffer.EmitPrehashed(e.key, e.fingerprint, e.tag, e.aux, e.payload,
                             e.wire_bytes);
      }
    }
    records += shuffle.AddTaskOutput(t, std::move(buffer))->records;
  }
  double t1 = Now();
  if (!shuffle.Partition(kReducePartitions).ok()) std::abort();
  double t2 = Now();
  for (int p = 0; p < shuffle.num_partitions(); ++p) {
    shuffle.ForEachGroup(
        static_cast<size_t>(p),
        [&](TupleView key, const mr::MessageGroup& values) {
          sum->Key(key);
          for (const mr::MessageRef m : values) {
            sum->Value(m.tag(), m.aux(),
                       TupleFingerprint(m.payload_words(), m.payload_size()));
          }
        });
  }
  if (phases != nullptr) {
    double t3 = Now();
    phases->ingest += t1 - t0;
    phases->partition += t2 - t1;
    phases->reduce += t3 - t2;
  }
  return records;
}

// ---- Timing -----------------------------------------------------------------

double SecondsOfBestRep(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct WorkloadResult {
  std::string name;
  size_t records = 0;
  size_t messages = 0;
  double legacy_rps = 0.0;
  double flat_rps = 0.0;
  double speedup = 0.0;
};

// ---- Baseline JSON ----------------------------------------------------------

// Minimal extraction for the flat JSON this binary writes: finds
// `"name": "<w>"` and returns the next `"speedup": <num>` after it.
bool BaselineSpeedup(const std::string& json, const std::string& name,
                     double* out) {
  const std::string needle = "\"name\": \"" + name + "\"";
  size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const std::string key = "\"speedup\":";
  at = json.find(key, at);
  if (at == std::string::npos) return false;
  *out = std::strtod(json.c_str() + at + key.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_shuffle.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out FILE] [--baseline FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  BenchOptions options = BenchOptions::FromEnv();
  const int reps = smoke ? 3 : 5;
  const size_t tasks_per_input = 4;

  std::vector<data::Workload> workloads;
  for (int qi : {1, 3}) {
    auto w = data::MakeA(qi, options.MakeGeneratorConfig());
    if (w.ok()) workloads.push_back(std::move(*w));
  }
  {
    auto w = data::MakeB(1, options.MakeGeneratorConfig());
    if (w.ok()) workloads.push_back(std::move(*w));
  }
  if (workloads.empty()) {
    std::fprintf(stderr, "no workloads built\n");
    return 1;
  }

  std::printf(
      "Shuffle hot path: flat fingerprint buffers vs. legacy Tuple/Message\n"
      "(%zu tuples/relation, %d reps, best-of; %d reduce partitions)\n\n",
      options.tuples, reps, kReducePartitions);

  int failures = 0;
  std::vector<WorkloadResult> results;
  for (const data::Workload& w : workloads) {
    auto job = BuildJob(w);
    if (!job.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", w.name.c_str(),
                   job.status().ToString().c_str());
      ++failures;
      continue;
    }
    auto streams = RecordStreams(w, *job, tasks_per_input);
    if (!streams.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", w.name.c_str(),
                   streams.status().ToString().c_str());
      ++failures;
      continue;
    }
    size_t emissions = 0;
    for (const TaskStream& s : *streams) emissions += s.size();

    WorkloadResult r;
    r.name = w.name;
    r.messages = emissions;

    Checksum legacy_sum;
    Checksum flat_sum;
    size_t legacy_records = 0;
    size_t flat_records = 0;
    const double legacy_s = SecondsOfBestRep(reps, [&] {
      legacy_sum = Checksum{};
      legacy_records = RunLegacy(*streams, &legacy_sum);
    });
    const double flat_s = SecondsOfBestRep(reps, [&] {
      flat_sum = Checksum{};
      flat_records = RunFlat(*streams, &flat_sum);
    });

    if (common::RuntimeConfig::Get().bench_phases.value_or(false)) {
      Phases lp, fp;
      Checksum dummy;
      RunLegacy(*streams, &dummy, &lp);
      dummy = Checksum{};
      RunFlat(*streams, &dummy, &fp);
      std::printf(
          "  phases %s: legacy ingest %.1fms partition %.1fms reduce %.1fms"
          " | flat ingest %.1fms partition %.1fms reduce %.1fms\n",
          w.name.c_str(), 1e3 * lp.ingest, 1e3 * lp.partition,
          1e3 * lp.reduce, 1e3 * fp.ingest, 1e3 * fp.partition,
          1e3 * fp.reduce);
    }

    if (!(legacy_sum == flat_sum) || legacy_records != flat_records) {
      std::fprintf(stderr,
                   "FAIL %s: representations disagree (records %zu vs %zu, "
                   "groups %zu vs %zu, messages %zu vs %zu)\n",
                   w.name.c_str(), legacy_records, flat_records,
                   legacy_sum.groups, flat_sum.groups, legacy_sum.messages,
                   flat_sum.messages);
      ++failures;
      continue;
    }

    r.records = flat_records;
    r.legacy_rps = static_cast<double>(legacy_records) / legacy_s;
    r.flat_rps = static_cast<double>(flat_records) / flat_s;
    r.speedup = r.flat_rps / r.legacy_rps;
    results.push_back(r);

    std::printf(
        "%-4s %9zu records %9zu messages | legacy %10.0f rec/s | "
        "flat %10.0f rec/s | speedup %.2fx\n",
        r.name.c_str(), r.records, r.messages, r.legacy_rps, r.flat_rps,
        r.speedup);

    // Self-check: the 2x acceptance bar applies at realistic input sizes
    // (the 100k-tuple default). Smoke inputs are small enough that the
    // legacy hash map stays cache-resident, so smoke only sanity-checks
    // that flat still wins clearly; the committed-baseline gate below is
    // the smoke regression check.
    const double bar = smoke ? 1.4 : 2.0;
    if (r.speedup < bar) {
      std::fprintf(stderr, "FAIL %s: speedup %.2fx below the %.1fx bar\n",
                   r.name.c_str(), r.speedup, bar);
      ++failures;
    }
  }

  // Machine-readable results.
  {
    std::ostringstream json;
    json << "{\n  \"bench\": \"shuffle_hotpath\",\n  \"tuples\": "
         << options.tuples << ",\n  \"reduce_partitions\": "
         << kReducePartitions << ",\n  \"workloads\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const WorkloadResult& r = results[i];
      json << "    {\"name\": \"" << r.name << "\", \"records\": " << r.records
           << ", \"messages\": " << r.messages
           << ", \"legacy_records_per_sec\": "
           << StrFormat("%.0f", r.legacy_rps)
           << ", \"flat_records_per_sec\": " << StrFormat("%.0f", r.flat_rps)
           << ", \"speedup\": " << StrFormat("%.3f", r.speedup) << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  // Regression gate against a committed baseline: compare the speedup
  // ratio (machine-independent), not absolute rates.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      ++failures;
    } else {
      std::stringstream ss;
      ss << in.rdbuf();
      const std::string json = ss.str();
      // Smoke runs on arbitrary (CI) hardware compare against a baseline
      // committed from a different machine: the ratio is mostly hardware
      // independent but not perfectly (allocator, cache size, runner
      // contention), so smoke gets a wider band; the absolute smoke
      // sanity bar above still backstops real regressions.
      const double tolerance = smoke ? 0.7 : 0.8;
      for (const WorkloadResult& r : results) {
        double base = 0.0;
        if (!BaselineSpeedup(json, r.name, &base)) {
          std::fprintf(stderr, "FAIL: baseline has no entry for %s\n",
                       r.name.c_str());
          ++failures;
          continue;
        }
        if (r.speedup < tolerance * base) {
          std::fprintf(stderr,
                       "FAIL %s: speedup %.2fx regressed >%.0f%% vs baseline "
                       "%.2fx\n",
                       r.name.c_str(), r.speedup, 100.0 * (1.0 - tolerance),
                       base);
          ++failures;
        } else {
          std::printf("baseline %s: %.2fx vs %.2fx committed — ok\n",
                      r.name.c_str(), r.speedup, base);
        }
      }
    }
  }

  return failures == 0 ? 0 : 1;
}
