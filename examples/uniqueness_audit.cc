// Uniqueness audit: the paper's B2 scenario ("uniqueness query") applied
// to a monitoring use case — find assets reported by EXACTLY ONE of four
// monitoring feeds — and compare the fused 1-ROUND evaluation against
// SEQ and PAR on the same data.
//
//   $ ./build/examples/uniqueness_audit
#include <cstdio>

#include "data/generator.h"
#include "mr/engine.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "sgf/parser.h"

using namespace gumbo;

int main() {
  Dictionary* dict = &Dictionary::Global();
  // Assets(id, site, owner, class); FeedA..FeedD report asset ids.
  const char* query_text =
      "Orphans := SELECT (id, owner) FROM Assets(id, site, owner, cls) "
      "WHERE (FeedA(id) AND NOT FeedB(id) AND NOT FeedC(id) AND NOT FeedD(id)) "
      "OR (NOT FeedA(id) AND FeedB(id) AND NOT FeedC(id) AND NOT FeedD(id)) "
      "OR (NOT FeedA(id) AND NOT FeedB(id) AND FeedC(id) AND NOT FeedD(id)) "
      "OR (NOT FeedA(id) AND NOT FeedB(id) AND NOT FeedC(id) AND FeedD(id));";
  auto query = sgf::ParseSgf(query_text, dict);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("Audit query (uniqueness / B2 shape):\n%s\n",
              query->ToString(dict).c_str());

  // Synthetic inventory: 100k assets, four feeds each covering ~40%.
  data::GeneratorConfig cfg;
  cfg.tuples = 100000;
  cfg.representation_scale = 1.0;
  cfg.selectivity = 0.4;
  cfg.seed = 7;
  data::Generator gen(cfg);
  Database db;
  db.Put(gen.Guard("Assets", 4));
  for (const char* feed : {"FeedA", "FeedB", "FeedC", "FeedD"}) {
    db.Put(gen.Conditional(feed, 1));
  }

  cost::ClusterConfig cluster;
  mr::Engine engine(cluster);
  std::printf("%-10s %12s %12s %8s %8s\n", "strategy", "net (s)",
              "total (s)", "jobs", "tuples");
  for (plan::Strategy s : {plan::Strategy::kSeq, plan::Strategy::kPar,
                           plan::Strategy::kGreedy,
                           plan::Strategy::kOneRound}) {
    plan::PlannerOptions options;
    options.strategy = s;
    plan::Planner planner(cluster, options);
    Database work = db;
    auto plan = planner.Plan(*query, work);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s: %s\n", StrategyName(s),
                   plan.status().ToString().c_str());
      continue;
    }
    auto result = plan::ExecutePlan(*plan, &engine, &work);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", StrategyName(s),
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s %12.2f %12.2f %8d %8zu\n", StrategyName(s),
                result->metrics.net_time, result->metrics.total_time,
                result->metrics.jobs, work.Get("Orphans").value()->size());
  }
  std::printf(
      "\nAll strategies return the same orphan set; 1-ROUND does it in a "
      "single job because the condition is a Boolean combination over one "
      "join key (paper section 5.1, optimization (4)).\n");
  return 0;
}
