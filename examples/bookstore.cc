// Bookstore: the paper's Example 2 — find upcoming books by authors who
// have NOT received a "bad" rating for the same title at all three
// retailers — run as a nested SGF query under GREEDY-SGF on synthetic
// book data.
//
//   $ ./build/examples/bookstore
#include <cstdio>

#include "common/rng.h"
#include "mr/engine.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "sgf/parser.h"

using namespace gumbo;

int main() {
  Dictionary* dict = &Dictionary::Global();
  const char* query_text =
      "BadEverywhere := SELECT aut FROM Amaz(ttl, aut, \"bad\") "
      "WHERE BN(ttl, aut, \"bad\") AND BD(ttl, aut, \"bad\");\n"
      "Recommended := SELECT (new, aut) FROM Upcoming(new, aut) "
      "WHERE NOT BadEverywhere(aut);";
  auto query = sgf::ParseSgf(query_text, dict);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("Query:\n%s\n", query->ToString(dict).c_str());

  // Synthetic catalog: 2000 titles by 500 authors, rated at three stores;
  // ~30% of (title, author) pairs are rated "bad" at any given store.
  Xoshiro256 rng(2016);
  Value bad = dict->Intern("bad");
  Value good = dict->Intern("good");
  Database db;
  Relation amaz("Amaz", 3), bn("BN", 3), bd("BD", 3), up("Upcoming", 2);
  for (int t = 0; t < 2000; ++t) {
    Value title = dict->Intern("title" + std::to_string(t));
    Value author = dict->Intern("author" + std::to_string(t % 500));
    amaz.AddUnchecked({title, author, rng.Bernoulli(0.3) ? bad : good});
    bn.AddUnchecked({title, author, rng.Bernoulli(0.3) ? bad : good});
    bd.AddUnchecked({title, author, rng.Bernoulli(0.3) ? bad : good});
  }
  for (int n = 0; n < 40; ++n) {
    up.AddUnchecked({dict->Intern("upcoming" + std::to_string(n)),
                     dict->Intern("author" + std::to_string(n * 12))});
  }
  db.Put(std::move(amaz));
  db.Put(std::move(bn));
  db.Put(std::move(bd));
  db.Put(std::move(up));

  cost::ClusterConfig cluster;
  plan::PlannerOptions options;
  options.strategy = plan::Strategy::kGreedySgf;
  plan::Planner planner(cluster, options);
  mr::Engine engine(cluster);
  auto plan = planner.Plan(*query, db);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Plan:\n%s\n", plan->description.c_str());
  auto result = plan::ExecutePlan(*plan, &engine, &db);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const Relation* bad_everywhere = db.Get("BadEverywhere").value();
  const Relation* recommended = db.Get("Recommended").value();
  std::printf("Authors rated bad at all three stores: %zu\n",
              bad_everywhere->size());
  std::printf("Recommended upcoming books: %zu of 40\n",
              recommended->size());
  int shown = 0;
  for (gumbo::RowView t : recommended->views()) {
    if (shown++ >= 5) break;
    std::printf("  %s\n", t.ToString(dict).c_str());
  }
  std::printf("\nnet %.2fs / total %.2fs across %d jobs (%d rounds)\n",
              result->metrics.net_time, result->metrics.total_time,
              result->metrics.jobs, result->metrics.rounds);
  return 0;
}
