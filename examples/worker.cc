// worker: one shard of a multi-process GUMBO cluster (DESIGN.md §13).
//
// Every cooperating process is launched with the same workload, seed,
// and mailbox directory, plus its own --shard index:
//
//   dir=$(mktemp -d)
//   for s in 0 1 2; do
//     ./build/worker --shard=$s --shards=3 --dir=$dir --workload=A3 &
//   done; wait
//
// Each process regenerates the workload from the seed (full replication
// — no data distribution step), plans it with the same deterministic
// planner, and executes it as shard K of N over an MmapTransport rooted
// at --dir. The coordinator (shard 0) then writes each query output as a
// kRelation wire frame to <dir>/out_<name>.rel and a metrics.json with
// the merged stats — which is how bench_fig7_scaling --dist and
// tests/dist_test.cc verify multi-process runs byte-identical to the
// single-process runtime.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "data/workloads.h"
#include "dist/cluster.h"
#include "dist/sharded.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "mr/engine.h"
#include "plan/executor.h"
#include "plan/planner.h"

using namespace gumbo;

namespace {

struct Args {
  int shard = 0;
  int shards = 1;
  std::string dir;
  std::string workload = "A3";
  size_t tuples = 2000;
  uint64_t seed = 42;
  double represented = 100e6;
  std::string strategy = "greedy";
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --shard=K --shards=N --dir=PATH [--workload=A1|A3|B1]\n"
      "          [--tuples=N] [--seed=S] [--represented=T] "
      "[--strategy=seq|par|greedy|oneround]\n",
      argv0);
  return 2;
}

Result<data::Workload> MakeWorkload(const Args& a) {
  data::GeneratorConfig g;
  g.tuples = a.tuples;
  g.seed = a.seed;
  g.representation_scale =
      a.represented / static_cast<double>(a.tuples);
  if (a.workload == "A1") return data::MakeA(1, g);
  if (a.workload == "A3") return data::MakeA(3, g);
  if (a.workload == "B1") return data::MakeB(1, g);
  return Status::InvalidArgument("unknown workload " + a.workload +
                                 " (A1, A3, B1)");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "shard", &v)) {
      args.shard = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "shards", &v)) {
      args.shards = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "dir", &v)) {
      args.dir = v;
    } else if (ParseFlag(argv[i], "workload", &v)) {
      args.workload = v;
    } else if (ParseFlag(argv[i], "tuples", &v)) {
      args.tuples = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "seed", &v)) {
      args.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "represented", &v)) {
      args.represented = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "strategy", &v)) {
      args.strategy = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (args.dir.empty() || args.shards < 1 || args.shard < 0 ||
      args.shard >= args.shards) {
    return Usage(argv[0]);
  }

  auto workload = MakeWorkload(args);
  if (!workload.ok()) {
    std::fprintf(stderr, "worker %d: %s\n", args.shard,
                 workload.status().ToString().c_str());
    return 1;
  }
  Database db = std::move(workload->db);

  // Identical planner configuration on every shard -> identical plan
  // (the planner is deterministic given the same database and options).
  cost::ClusterConfig config;
  plan::PlannerOptions popts;
  auto strategy = plan::StrategyFromName(args.strategy);
  if (!strategy.ok()) {
    std::fprintf(stderr, "worker %d: %s\n", args.shard,
                 strategy.status().ToString().c_str());
    return 1;
  }
  popts.strategy = *strategy;
  plan::Planner planner(config, popts);
  auto plan = planner.Plan(workload->query, db);
  if (!plan.ok()) {
    std::fprintf(stderr, "worker %d: plan: %s\n", args.shard,
                 plan.status().ToString().c_str());
    return 1;
  }

  mr::Engine engine(config);
  dist::MmapTransport transport(args.dir, args.shards);
  dist::Cluster cluster{&transport, args.shard, args.shards};
  plan::ExecutionContext ectx;
  ectx.cluster = &cluster;
  auto result = plan::ExecutePlan(*plan, &engine, &db, ectx);
  if (!result.ok()) {
    std::fprintf(stderr, "worker %d: execute: %s\n", args.shard,
                 result.status().ToString().c_str());
    return 1;
  }

  if (args.shard == 0) {
    // The coordinator's replica holds the authoritative outputs; publish
    // them as wire frames so any process (the bench, the tests) can
    // compare words + fingerprints without linking this binary.
    for (const auto& q : workload->query.subqueries()) {
      auto rel = db.Get(q.output());
      if (!rel.ok()) {
        std::fprintf(stderr, "worker 0: missing output %s\n",
                     q.output().c_str());
        return 1;
      }
      const std::string path = args.dir + "/out_" + q.output() + ".rel";
      const std::vector<uint8_t> frame =
          dist::EncodeRelationFrame(**rel, /*src_shard=*/0);
      std::ofstream out(path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
      if (!out) {
        std::fprintf(stderr, "worker 0: cannot write %s\n", path.c_str());
        return 1;
      }
    }
    const plan::Metrics& m = result->metrics;
    std::ofstream mj(args.dir + "/metrics.json");
    mj << "{\n"
       << "  \"workload\": \"" << args.workload << "\",\n"
       << "  \"shards\": " << args.shards << ",\n"
       << "  \"dist_wire_mb\": " << m.dist_wire_mb << ",\n"
       << "  \"shuffle_mb\": " << m.shuffle_mb << ",\n"
       << "  \"net_time\": " << m.net_time << ",\n"
       << "  \"total_time\": " << m.total_time << ",\n"
       << "  \"wall_ms\": " << m.wall_ms << "\n"
       << "}\n";
    std::printf(
        "worker 0/%d %s: ok — %.3f MB wire, %.3f MB shuffle, net %.1f s\n",
        args.shards, args.workload.c_str(), m.dist_wire_mb, m.shuffle_mb,
        m.net_time);
  } else {
    std::printf("worker %d/%d %s: ok\n", args.shard, args.shards,
                args.workload.c_str());
  }
  return 0;
}
