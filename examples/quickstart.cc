// Quickstart: parse the paper's introductory SGF query, plan it with
// Greedy-BSGF, execute it on the simulated MapReduce cluster, and print
// the result together with the plan and its cost metrics.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "common/dictionary.h"
#include "mr/engine.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "sgf/parser.h"

using namespace gumbo;

int main() {
  // The query from the paper's introduction:
  //   SELECT (x, y) FROM R(x, y)
  //   WHERE (S(x, y) OR S(y, x)) AND T(x, z)
  const char* query_text =
      "Z := SELECT (x, y) FROM R(x, y) "
      "WHERE (S(x, y) OR S(y, x)) AND T(x, z);";

  Dictionary* dict = &Dictionary::Global();
  auto query = sgf::ParseSgf(query_text, dict);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("Query:\n%s\n", query->ToString(dict).c_str());

  // A small database. R holds pairs; S holds endorsements in either
  // direction; T holds any outgoing edge.
  Database db;
  auto add = [&](const char* rel, uint32_t arity,
                 std::initializer_list<std::initializer_list<int64_t>> rows) {
    Relation r(rel, arity);
    for (const auto& row : rows) {
      Tuple t;
      for (int64_t v : row) t.PushBack(Value::Int(v));
      r.AddUnchecked(std::move(t));
    }
    db.Put(std::move(r));
  };
  add("R", 2, {{1, 2}, {2, 3}, {3, 4}, {4, 1}, {5, 6}});
  add("S", 2, {{1, 2}, {3, 2}, {4, 1}});
  add("T", 2, {{1, 7}, {2, 8}, {4, 9}});

  // Plan with the GREEDY strategy (Greedy-BSGF grouping + EVAL).
  cost::ClusterConfig cluster;  // the paper's 10-node testbed parameters
  plan::PlannerOptions options;
  options.strategy = plan::Strategy::kGreedy;
  plan::Planner planner(cluster, options);

  auto plan = planner.Plan(*query, db);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning error: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Plan (%d round(s), %zu job(s)):\n%s\n",
              plan->program.Rounds(), plan->program.size(),
              plan->description.c_str());

  mr::Engine engine(cluster);
  auto result = plan::ExecutePlan(*plan, &engine, &db);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const Relation* z = db.Get("Z").value();
  std::printf("Result Z (%zu tuples):\n", z->size());
  for (gumbo::RowView t : z->views()) {
    std::printf("  %s\n", t.ToString(dict).c_str());
  }
  std::printf(
      "\nMetrics: net time %.2fs, total time %.2fs, %d jobs, "
      "%.3f MB read, %.3f MB shuffled\n",
      result->metrics.net_time, result->metrics.total_time,
      result->metrics.jobs, result->metrics.input_mb,
      result->metrics.communication_mb);
  return 0;
}
