// Plan explorer: an EXPLAIN-style CLI. Give it an SGF query (and
// optionally relation sizes) and it prints, for every applicable
// strategy, the MR program, round/job counts, and the executed
// cost-model metrics on synthetic data of the requested shape.
//
//   $ ./build/examples/plan_explorer "Z := SELECT x FROM R(x,y) WHERE S(x) AND T(y);"
//   $ ./build/examples/plan_explorer --tuples 50000 "<query...>"
#include <cstdio>
#include <cstring>
#include <string>

#include "data/generator.h"
#include "mr/engine.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "sgf/parser.h"

using namespace gumbo;

int main(int argc, char** argv) {
  size_t tuples = 20000;
  std::string query_text;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tuples") == 0 && i + 1 < argc) {
      tuples = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      if (!query_text.empty()) query_text += " ";
      query_text += argv[i];
    }
  }
  if (query_text.empty()) {
    query_text =
        "Z := SELECT (x, y) FROM R(x, y, z, w) "
        "WHERE S(x) AND (T(y) OR NOT U(x));";
    std::printf("(no query given; using the paper's Example 4)\n");
  }

  Dictionary* dict = &Dictionary::Global();
  auto query = sgf::ParseSgf(query_text, dict);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  std::printf("Query:\n%s\n", query->ToString(dict).c_str());

  // Build synthetic relations of the right arities.
  data::GeneratorConfig cfg;
  cfg.tuples = tuples;
  cfg.representation_scale = 1.0;
  data::Generator gen(cfg);
  Database db;
  for (const auto& q : query->subqueries()) {
    auto ensure = [&](const std::string& rel, uint32_t arity, bool guard) {
      if (db.Contains(rel) || query->ProducerOf(rel) >= 0) return;
      db.Put(guard ? gen.Guard(rel, arity) : gen.Conditional(rel, arity));
    };
    ensure(q.guard().relation(), q.guard().arity(), true);
    for (const auto& atom : q.conditional_atoms()) {
      ensure(atom.relation(), atom.arity(), false);
    }
  }

  cost::ClusterConfig cluster;
  mr::Engine engine(cluster);
  for (plan::Strategy s :
       {plan::Strategy::kSeq, plan::Strategy::kPar, plan::Strategy::kGreedy,
        plan::Strategy::kOpt, plan::Strategy::kOneRound,
        plan::Strategy::kSeqUnit, plan::Strategy::kParUnit,
        plan::Strategy::kGreedySgf}) {
    plan::PlannerOptions options;
    options.strategy = s;
    plan::Planner planner(cluster, options);
    Database work = db;
    auto plan = planner.Plan(*query, work);
    std::printf("\n=== %s ===\n", StrategyName(s));
    if (!plan.ok()) {
      std::printf("not applicable: %s\n", plan.status().ToString().c_str());
      continue;
    }
    std::printf("%s", plan->description.c_str());
    auto result = plan::ExecutePlan(*plan, &engine, &work);
    if (!result.ok()) {
      std::printf("execution failed: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    std::printf(
        "rounds %d | jobs %d | net %.2fs | total %.2fs | read %.2f MB | "
        "shuffle %.2f MB\n",
        result->metrics.rounds, result->metrics.jobs,
        result->metrics.net_time, result->metrics.total_time,
        result->metrics.input_mb, result->metrics.communication_mb);
    std::printf(
        "scheduler: max %d jobs/round | peak %d concurrent | wall %.1f ms\n",
        result->metrics.max_jobs_per_round,
        result->metrics.peak_concurrent_jobs, result->metrics.wall_ms);
    for (const auto& q : query->subqueries()) {
      std::printf("  %s: %zu tuples\n", q.output().c_str(),
                  work.Get(q.output()).value()->size());
    }
  }
  return 0;
}
