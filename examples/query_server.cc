// query_server: a REPL-style driver for the concurrent query service
// (DESIGN.md §8). Builds a generated demo database (guard R over unary
// conditionals S, T, U, V — the Table 2 shape), starts a QueryService,
// and serves SGF queries typed on stdin.
//
//   $ ./build/query_server [tuples]
//   gumbo> Z := SELECT (x, y) FROM R(x, y, z, w) WHERE S(x) AND T(y);
//   ... result sample + per-query metrics (plan cache hit, queue/plan/
//       exec times) ...
//   gumbo> \stats        aggregate service + plan/result-cache counters
//   gumbo> \rel          relations in the database
//   gumbo> \addfact R 1 2 3 4     insert a fact through the write API —
//                        cached results are delta-maintained (DESIGN.md
//                        §12), watch \stats delta counters move
//   gumbo> \quit
//
// Statements may span lines; a ';' submits. Works piped too:
//   echo 'Z := SELECT x FROM R(x,y,z,w) WHERE S(x);' | ./build/query_server
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.h"
#include "common/dictionary.h"
#include "data/generator.h"
#include "serve/service.h"
#include "sgf/parser.h"

using namespace gumbo;

namespace {

void PrintStats(const serve::QueryService& service) {
  const serve::ServiceStats s = service.Stats();
  std::printf(
      "service: %llu submitted, %llu ok, %llu failed | fast lane %llu | "
      "peak inflight %d\n"
      "plans:   %llu built, %llu coalesced | cache %llu hits / %llu misses "
      "/ %llu invalidations / %llu entries\n"
      "latency: p50 %.1f ms  p95 %.1f ms  p99 %.1f ms | mean queue %.1f ms, "
      "plan %.1f ms, exec %.1f ms\n"
      "faults:  %llu deadline / %llu cancelled / %llu shed | %llu task "
      "retries, %llu injected\n",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.fast_lane), s.peak_inflight,
      static_cast<unsigned long long>(s.plans_built),
      static_cast<unsigned long long>(s.plan_coalesced),
      static_cast<unsigned long long>(s.cache.hits),
      static_cast<unsigned long long>(s.cache.misses),
      static_cast<unsigned long long>(s.cache.invalidations),
      static_cast<unsigned long long>(s.cache.entries), s.total_p50_ms,
      s.total_p95_ms, s.total_p99_ms, s.mean_queue_ms, s.mean_plan_ms,
      s.mean_exec_ms, static_cast<unsigned long long>(s.deadline_exceeded),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.task_retries),
      static_cast<unsigned long long>(s.faults_injected));
  std::printf(
      "delta:   %llu result hits, %llu delta-maintained (%llu delta rows, "
      "mean %.1f ms) | result cache %llu hits / %llu misses / %llu "
      "invalidations / %llu entries\n",
      static_cast<unsigned long long>(s.result_hits),
      static_cast<unsigned long long>(s.delta_hits),
      static_cast<unsigned long long>(s.delta_rows), s.mean_delta_ms,
      static_cast<unsigned long long>(s.result_cache.hits),
      static_cast<unsigned long long>(s.result_cache.misses),
      static_cast<unsigned long long>(s.result_cache.invalidations),
      static_cast<unsigned long long>(s.result_cache.entries));
  std::printf("config (GUMBO_* knobs live in this process):\n%s",
              common::RuntimeConfig::Get().Describe().c_str());
}

// \addfact REL v1 v2 ...: integer fact through the service's write API.
void HandleAddFact(serve::QueryService* service, const Database& db,
                   const std::string& line) {
  std::string rest = line.substr(std::string("\\addfact").size());
  std::string name;
  Tuple t;
  size_t pos = 0;
  while (pos < rest.size()) {
    while (pos < rest.size() && std::isspace(
               static_cast<unsigned char>(rest[pos]))) {
      ++pos;
    }
    size_t end = pos;
    while (end < rest.size() && !std::isspace(
               static_cast<unsigned char>(rest[end]))) {
      ++end;
    }
    if (end == pos) break;
    const std::string tok = rest.substr(pos, end - pos);
    pos = end;
    if (name.empty()) {
      name = tok;
    } else {
      char* parse_end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &parse_end, 10);
      if (parse_end == nullptr || *parse_end != '\0') {
        std::printf("not an integer: %s\n", tok.c_str());
        return;
      }
      t.PushBack(Value::Int(v));
    }
  }
  if (name.empty()) {
    std::printf("usage: \\addfact REL v1 v2 ... (one integer per column)\n");
    return;
  }
  const Status st = service->AddFact(name, t);
  if (!st.ok()) {
    std::printf("addfact error: %s\n", st.ToString().c_str());
    return;
  }
  std::printf("%s += %zu-ary fact (%zu tuples, stats epoch %llu)\n",
              name.c_str(), static_cast<size_t>(t.size()),
              db.Get(name).value()->size(),
              static_cast<unsigned long long>(db.StatsEpochOf(name)));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--help") {
    std::printf(
        "usage: query_server [tuples]\n"
        "REPL over a generated demo database; \\stats, \\rel, \\addfact, "
        "\\quit.\n\nGUMBO_* environment knobs (current values):\n%s",
        common::RuntimeConfig::Get().Describe().c_str());
    return 0;
  }
  const size_t tuples =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 5000;

  data::GeneratorConfig cfg;
  cfg.tuples = tuples;
  cfg.representation_scale = 1.0;
  data::Generator gen(cfg);
  Database db;
  db.Put(gen.Guard("R", 4));
  for (const char* c : {"S", "T", "U", "V"}) db.Put(gen.Conditional(c, 1));

  serve::ServiceOptions options;
  options.max_inflight = 4;
  serve::QueryService service(&db, options);

  Dictionary* dict = &Dictionary::Global();
  std::printf(
      "gumbo query server — %zu-tuple demo database: R(4-ary guard), "
      "S/T/U/V (unary conditionals)\n"
      "Type an SGF query ending in ';', \\stats, \\rel, or \\quit.\n",
      tuples);

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "gumbo> " : "   ... ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\stats") {
        PrintStats(service);
      } else if (line.rfind("\\addfact", 0) == 0) {
        HandleAddFact(&service, db, line);
      } else if (line == "\\rel") {
        for (const auto& [name, rel] : db.relations()) {
          std::printf("  %s/%u: %zu tuples (stats epoch %llu)\n",
                      name.c_str(), rel.arity(), rel.size(),
                      static_cast<unsigned long long>(db.StatsEpochOf(name)));
        }
      } else {
        std::printf("commands: \\stats \\rel \\addfact REL v1 v2 ... \\quit\n");
      }
      continue;
    }

    buffer += line;
    buffer += '\n';
    if (line.find(';') == std::string::npos) continue;  // keep accumulating

    auto query = sgf::ParseSgf(buffer, dict);
    buffer.clear();
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      continue;
    }

    serve::QueryResponse resp = service.Run(std::move(*query));
    if (!resp.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      continue;
    }
    for (const auto& [name, rel] : resp.outputs.relations()) {
      std::printf("%s: %zu tuples", name.c_str(), rel.size());
      const size_t show = rel.size() < 5 ? rel.size() : 5;
      for (size_t i = 0; i < show; ++i) {
        std::printf("%s %s", i == 0 ? " —" : ",",
                    rel.view(i).ToString(dict).c_str());
      }
      std::printf(rel.size() > show ? ", ...\n" : "\n");
    }
    const char* served_from =
        resp.metrics.result_cache_hit
            ? "result cache HIT"
            : (resp.metrics.delta_applied
                   ? "delta-maintained"
                   : (resp.metrics.plan_cache_hit ? "plan cache HIT"
                                                  : "planned fresh"));
    std::printf(
        "%.1f ms (queue %.1f + plan %.1f + exec) | %s | "
        "%d job(s), %d round(s), %.2f MB shuffled\n",
        resp.wall_ms, resp.metrics.queue_ms, resp.metrics.plan_ms,
        served_from, resp.metrics.jobs, resp.metrics.rounds,
        resp.metrics.shuffle_mb);
  }
  std::printf("\n");
  PrintStats(service);
  return 0;
}
